//===- bench/BenchUtil.h - Shared experiment harness helpers ---*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the experiment binaries (E1–E8): wall-clock timing,
/// multi-threaded workload driving with a common start line, and STM
/// statistics capture around a run.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_BENCH_BENCHUTIL_H
#define OTM_BENCH_BENCHUTIL_H

#include "obs/StatsReporter.h"
#include "obs/Statistic.h"
#include "obs/Telemetry.h"
#include "obs/TraceRing.h"
#include "obs/TxObs.h"
#include "stm/StatsJson.h"
#include "stm/Stm.h"
#include "support/Random.h"
#include "txn/AdmissionScheduler.h"
#include "txn/CmStats.h"
#include "wstm/WordStm.h"
#include "support/ThreadBarrier.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace otm {
namespace bench {

/// Runs \p Body once and returns elapsed seconds.
template <typename FnType> double timeIt(FnType &&Body) {
  auto Begin = std::chrono::steady_clock::now();
  Body();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Begin).count();
}

/// Runs \p Worker(threadIndex) on \p NumThreads threads, released together;
/// returns elapsed seconds measured across all of them. Workers flush
/// their STM statistics before joining.
inline double runThreads(unsigned NumThreads,
                         const std::function<void(unsigned)> &Worker) {
  ThreadBarrier StartLine(NumThreads + 1);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      StartLine.arriveAndWait();
      Worker(T);
      stm::TxManager::current().flushStats();
      wstm::WTxManager::current().flushStats();
    });
  // Clock starts before the release: on a single-core host the releasing
  // arrival may deschedule this thread until the workers are already done.
  auto Begin = std::chrono::steady_clock::now();
  StartLine.arriveAndWait();
  for (std::thread &T : Threads)
    T.join();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Begin).count();
}

/// Snapshot of the process-wide STM statistics around a run.
class StatsCapture {
public:
  StatsCapture() {
    stm::Stm::resetGlobalStats();
    txn::CmStats::instance().reset();
  }

  stm::TxStats finish() {
    stm::TxManager::current().flushStats();
    wstm::WTxManager::current().flushStats();
    return stm::Stm::globalStats();
  }
};

inline void printHeaderRule() {
  std::printf("--------------------------------------------------------------"
              "----------------\n");
}

/// True when the process runs as a smoke test (OTM_BENCH_SMOKE=1): the
/// binaries shrink their workloads to seconds-not-minutes sizes while still
/// exercising every code path and emitting their JSON documents.
inline bool smokeMode() {
  static const bool On = [] {
    const char *E = std::getenv("OTM_BENCH_SMOKE");
    return E && E[0] == '1';
  }();
  return On;
}

/// \p Full in a real run, \p Small under OTM_BENCH_SMOKE=1.
inline std::size_t scaled(std::size_t Full, std::size_t Small) {
  return smokeMode() ? Small : Full;
}

/// The bench-standard hot-key skew (YCSB's 0.99), defined once here instead
/// of one `constexpr double ZipfSkew` per binary.
inline constexpr double BenchZipfSkew = 0.99;

/// The one key-popularity generator for workload drivers (E7/E9/E10/E11):
/// Zipf-skewed ranks (rank 0 hottest) or a uniform draw, behind one
/// interface so a bench can sweep distributions without forking its loop.
/// Keep the key stream separate from the role/decision stream (the E9
/// two-stream pattern) so runs stay deterministic under code motion.
class KeyDist {
public:
  /// Zipf at the bench-standard skew. Delegates to support's ZipfGenerator
  /// with the same (N, skew, seed) triple the binaries used to construct
  /// directly, so existing per-thread key streams are bit-identical.
  static KeyDist zipf(uint64_t N, uint64_t Seed) {
    return zipf(N, BenchZipfSkew, Seed);
  }
  static KeyDist zipf(uint64_t N, double Skew, uint64_t Seed) {
    KeyDist D(N, Seed);
    D.Zipf.emplace(N, Skew, Seed);
    return D;
  }
  static KeyDist uniform(uint64_t N, uint64_t Seed) { return KeyDist(N, Seed); }

  /// Next key in [0, N).
  uint64_t next() { return Zipf ? Zipf->next() : Rng.nextBelow(N); }

private:
  KeyDist(uint64_t N, uint64_t Seed) : N(N), Rng(Seed) {}

  uint64_t N;
  Xoshiro256 Rng;
  std::optional<ZipfGenerator> Zipf;
};

/// One measurement row for a BenchReport: {label, seconds, ops, ops_per_sec}
/// plus whatever the caller sets afterwards.
inline obs::JsonValue makeRun(const std::string &Label, double Seconds,
                              uint64_t Ops) {
  obs::JsonValue Run = obs::JsonValue::object();
  Run.set("label", Label);
  Run.set("seconds", Seconds);
  Run.set("ops", Ops);
  Run.set("ops_per_sec", Seconds > 0 ? double(Ops) / Seconds : 0.0);
  return Run;
}

/// Per-binary stats document: collects measurement rows and, at write(),
/// folds in the STM counter/histogram snapshot, abort attribution, and pass
/// statistics, then lands BENCH_<stem>.json (and a Chrome trace next to it
/// when OTM_TRACE=1). Construction turns on latency sampling so the
/// histograms fill; pass SampleLatencies=false when the binary measures the
/// barrier fast path itself (sampling adds two TSC reads per transaction,
/// which is exactly what such a binary must not include).
class BenchReport {
public:
  BenchReport(std::string BenchName, std::string Stem,
              bool SampleLatencies = true)
      : Reporter(std::move(BenchName)), FileStem(std::move(Stem)) {
    if (SampleLatencies)
      obs::setSampling(true);
  }

  void addRun(obs::JsonValue Run) { Reporter.addRun(std::move(Run)); }
  void addSection(const std::string &Key, obs::JsonValue V) {
    Reporter.addSection(Key, std::move(V));
  }

  void write() {
    stm::TxManager::current().flushStats();
    wstm::WTxManager::current().flushStats();
    stm::TxStats Global = stm::Stm::globalStats();
    Reporter.addSection("stm", stm::statsToJson(Global));
    Reporter.addSection("phases", stm::phaseBreakdownToJson(Global));
    Reporter.addSection("mvcc", stm::mvccStatsToJson(Global));
    Reporter.addSection("boost", stm::boostStatsToJson(Global));
    Reporter.addSection(
        "htm", stm::htmStatsToJson(Global, txn::CmStats::instance().snapshot()));
    Reporter.addSection("abort_sites", stm::abortSitesToJson());
    Reporter.addSection("sched", txn::schedStatsToJson());
    Reporter.addSection("pass_stats", obs::Statistic::allToJson());
    obs::JsonValue Cm = txn::cmStatsToJson(txn::CmStats::instance().snapshot());
    Cm.set("policy",
           txn::policyName(stm::TxManager::config().ContentionPolicy));
    Reporter.addSection("txn_cm", std::move(Cm));
    obs::JsonValue Tele = obs::JsonValue::object();
    Tele.set("enabled", obs::Telemetry::instance().running());
    Tele.set("interval_ms",
             static_cast<uint64_t>(obs::Telemetry::instance().intervalMs()));
    Tele.set("samples", obs::Telemetry::instance().samplesEmitted());
    Reporter.addSection("telemetry", std::move(Tele));
    // Optional conflict-graph dump for graphviz (dot -Tsvg): the edge table
    // is cumulative across the binary's whole run.
    if (const char *Dot = std::getenv("OTM_CONFLICT_DOT"); Dot && Dot[0] == '1') {
      std::string DotPath = obs::StatsReporter::outputPath(
          "BENCH_" + FileStem + ".conflicts.dot");
      if (FILE *F = std::fopen(DotPath.c_str(), "w")) {
        std::string G = obs::AbortSites::instance().dotGraph();
        std::fwrite(G.data(), 1, G.size(), F);
        std::fclose(F);
        std::printf("[stats] wrote %s\n", DotPath.c_str());
      }
    }
    std::string Path =
        obs::StatsReporter::outputPath("BENCH_" + FileStem + ".json");
    if (Reporter.writeFile(Path))
      std::printf("[stats] wrote %s\n", Path.c_str());
    else
      std::fprintf(stderr, "[stats] FAILED to write %s\n", Path.c_str());
    if (obs::TraceRing::enabled()) {
      std::string TracePath =
          obs::StatsReporter::outputPath("BENCH_" + FileStem + ".trace.json");
      if (obs::TraceRing::writeChromeTrace(TracePath))
        std::printf("[trace] wrote %s\n", TracePath.c_str());
    }
  }

private:
  obs::StatsReporter Reporter;
  std::string FileStem;
};

} // namespace bench
} // namespace otm

#endif // OTM_BENCH_BENCHUTIL_H
