//===- bench/BenchUtil.h - Shared experiment harness helpers ---*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the experiment binaries (E1–E8): wall-clock timing,
/// multi-threaded workload driving with a common start line, and STM
/// statistics capture around a run.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_BENCH_BENCHUTIL_H
#define OTM_BENCH_BENCHUTIL_H

#include "stm/Stm.h"
#include "wstm/WordStm.h"
#include "support/ThreadBarrier.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

namespace otm {
namespace bench {

/// Runs \p Body once and returns elapsed seconds.
template <typename FnType> double timeIt(FnType &&Body) {
  auto Begin = std::chrono::steady_clock::now();
  Body();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Begin).count();
}

/// Runs \p Worker(threadIndex) on \p NumThreads threads, released together;
/// returns elapsed seconds measured across all of them. Workers flush
/// their STM statistics before joining.
inline double runThreads(unsigned NumThreads,
                         const std::function<void(unsigned)> &Worker) {
  ThreadBarrier StartLine(NumThreads + 1);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      StartLine.arriveAndWait();
      Worker(T);
      stm::TxManager::current().flushStats();
      wstm::WTxManager::current().flushStats();
    });
  // Clock starts before the release: on a single-core host the releasing
  // arrival may deschedule this thread until the workers are already done.
  auto Begin = std::chrono::steady_clock::now();
  StartLine.arriveAndWait();
  for (std::thread &T : Threads)
    T.join();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Begin).count();
}

/// Snapshot of the process-wide STM statistics around a run.
class StatsCapture {
public:
  StatsCapture() { stm::Stm::resetGlobalStats(); }

  stm::TxStats finish() {
    stm::TxManager::current().flushStats();
    wstm::WTxManager::current().flushStats();
    return stm::Stm::globalStats();
  }
};

inline void printHeaderRule() {
  std::printf("--------------------------------------------------------------"
              "----------------\n");
}

} // namespace bench
} // namespace otm

#endif // OTM_BENCH_BENCHUTIL_H
