//===- bench/TmirPrograms.h - TMIR benchmark programs ----------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TMIR benchmark programs used by the static (E4) and dynamic (E5/E6)
/// compiler experiments. Each exercises a different optimization:
///
///   - list-sum     — read-only traversal; open-elim merges per-field opens;
///   - bst-insert   — search-then-insert; read-to-update upgrade target;
///   - bank         — cross-function transaction; tx cloning + upgrade;
///   - sieve        — array kernel in one big transaction; open-licm hoists
///                    the array open out of both loops;
///   - churn        — builds objects inside transactions; alloc elision;
///   - dotprod      — two-array kernel; LICM hoists both array opens.
///
/// Every entry function takes a single i64 size parameter, builds its own
/// data (outside atomic regions), runs the transactional kernel, and
/// returns a checksum so naive/optimized runs can be compared for
/// equality.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_BENCH_TMIRPROGRAMS_H
#define OTM_BENCH_TMIRPROGRAMS_H

namespace otm {
namespace bench {

struct TmirProgram {
  const char *Name;
  const char *Source;
  const char *Entry;
  long long Arg;
  long long Expected; ///< checksum for the default Arg
};

inline const TmirProgram *tmirPrograms(unsigned &Count) {
  static const TmirProgram Programs[] = {
      {"list-sum", R"(
class Node { val: i64, next: Node }

func build(n: i64): Node {
  var i: i64
  var head: Node
entry:
  storelocal i, 0
  storelocal head, null
  br loop
loop:
  %i = loadlocal i
  %n = loadlocal n
  %done = cmpge %i, %n
  condbr %done, exit, body
body:
  %fresh = newobj Node
  setfield %fresh, Node.val, %i
  %h = loadlocal head
  setfield %fresh, Node.next, %h
  storelocal head, %fresh
  %i2 = add %i, 1
  storelocal i, %i2
  br loop
exit:
  %r = loadlocal head
  ret %r
}

func main(n: i64): i64 {
  var cur: Node
  var acc: i64
entry:
  %n = loadlocal n
  %h = call build(%n)
  storelocal cur, %h
  storelocal acc, 0
  atomic_begin
  br loop
loop:
  %c = loadlocal cur
  %z = cmpeq %c, null
  condbr %z, exit, body
body:
  %v = getfield %c, Node.val
  %a = loadlocal acc
  %a2 = add %a, %v
  storelocal acc, %a2
  %nx = getfield %c, Node.next
  storelocal cur, %nx
  br loop
exit:
  atomic_end
  %r = loadlocal acc
  ret %r
}
)",
       "main", 2000, 2000LL * 1999 / 2},

      {"bst-insert", R"(
class Node { key: i64, left: Node, right: Node }
class Tree { root: Node }

func insert(t: Tree, k: i64) {
  var cur: Node
  var parent: Node
  var goLeft: i1
entry:
  atomic_begin
  %t = loadlocal t
  %root = getfield %t, Tree.root
  %isEmpty = cmpeq %root, null
  condbr %isEmpty, makeRoot, descend
makeRoot:
  %fresh0 = newobj Node
  %k0 = loadlocal k
  setfield %fresh0, Node.key, %k0
  setfield %t, Tree.root, %fresh0
  br done
descend:
  storelocal cur, %root
  storelocal parent, null
  br loop
loop:
  %c = loadlocal cur
  %z = cmpeq %c, null
  condbr %z, attach, step
step:
  %ck = getfield %c, Node.key
  %kk = loadlocal k
  %same = cmpeq %ck, %kk
  condbr %same, done, pick
pick:
  storelocal parent, %c
  %lt = cmplt %kk, %ck
  storelocal goLeft, %lt
  condbr %lt, goL, goR
goL:
  %l = getfield %c, Node.left
  storelocal cur, %l
  br loop
goR:
  %r = getfield %c, Node.right
  storelocal cur, %r
  br loop
attach:
  %fresh = newobj Node
  %k2 = loadlocal k
  setfield %fresh, Node.key, %k2
  %p = loadlocal parent
  %gl = loadlocal goLeft
  condbr %gl, attachL, attachR
attachL:
  setfield %p, Node.left, %fresh
  br done
attachR:
  setfield %p, Node.right, %fresh
  br done
done:
  atomic_end
  ret
}

func count(n: Node): i64 {
entry:
  %n = loadlocal n
  %z = cmpeq %n, null
  condbr %z, zero, rec
zero:
  ret 0
rec:
  %l = getfield %n, Node.left
  %cl = call count(%l)
  %r = getfield %n, Node.right
  %cr = call count(%r)
  %s = add %cl, %cr
  %s2 = add %s, 1
  ret %s2
}

func main(n: i64): i64 {
  var i: i64
  var key: i64
entry:
  %t = newobj Tree
  storelocal i, 0
  br loop
loop:
  %i = loadlocal i
  %n = loadlocal n
  %done = cmpge %i, %n
  condbr %done, exit, body
body:
  // keys scattered by a multiplicative hash mod 8192
  %h = mul %i, 2654435761
  %k = rem %h, 8192
  storelocal key, %k
  %kk = loadlocal key
  call insert(%t, %kk)
  %i2 = add %i, 1
  storelocal i, %i2
  br loop
exit:
  %root = getfield %t, Tree.root
  %c = call count(%root)
  ret %c
}
)",
       "main", 1500, 1500},

      {"bank", R"(
class Account { balance: i64 }

func transfer(src: Account, dst: Account, amount: i64) {
entry:
  atomic_begin
  %s = loadlocal src
  %sb = getfield %s, Account.balance
  %a = loadlocal amount
  %sb2 = sub %sb, %a
  setfield %s, Account.balance, %sb2
  %d = loadlocal dst
  %db = getfield %d, Account.balance
  %db2 = add %db, %a
  setfield %d, Account.balance, %db2
  atomic_end
  ret
}

func main(n: i64): i64 {
  var i: i64
entry:
  %a = newobj Account
  setfield %a, Account.balance, 100000
  %b = newobj Account
  storelocal i, 0
  br loop
loop:
  %i = loadlocal i
  %n = loadlocal n
  %done = cmpge %i, %n
  condbr %done, exit, body
body:
  %odd = rem %i, 2
  %fwd = cmpeq %odd, 0
  condbr %fwd, f, g
f:
  call transfer(%a, %b, 3)
  br next
g:
  call transfer(%b, %a, 1)
  br next
next:
  %i2 = add %i, 1
  storelocal i, %i2
  br loop
exit:
  %bb = getfield %b, Account.balance
  ret %bb
}
)",
       "main", 4000, 4000},

      {"sieve", R"(
func main(n: i64): i64 {
  var i: i64
  var j: i64
  var count: i64
entry:
  %n = loadlocal n
  %flags = newarr %n
  atomic_begin
  storelocal i, 2
  br outer
outer:
  %i = loadlocal i
  %nn = loadlocal n
  %done = cmpge %i, %nn
  condbr %done, tally, check
check:
  %isSet = arrget %flags, %i
  %composite = cmpne %isSet, 0
  condbr %composite, advance, mark
mark:
  %ii = mul %i, %i
  storelocal j, %ii
  br inner
inner:
  %j = loadlocal j
  %n2 = loadlocal n
  %jdone = cmpge %j, %n2
  condbr %jdone, advance, set
set:
  arrset %flags, %j, 1
  %i3 = loadlocal i
  %j2 = add %j, %i3
  storelocal j, %j2
  br inner
advance:
  %i2 = add %i, 1
  storelocal i, %i2
  br outer
tally:
  storelocal i, 2
  storelocal count, 0
  br tloop
tloop:
  %ti = loadlocal i
  %tn = loadlocal n
  %tdone = cmpge %ti, %tn
  condbr %tdone, exit, tbody
tbody:
  %f = arrget %flags, %ti
  %prime = cmpeq %f, 0
  condbr %prime, bump, tnext
bump:
  %c = loadlocal count
  %c2 = add %c, 1
  storelocal count, %c2
  br tnext
tnext:
  %ti2 = add %ti, 1
  storelocal i, %ti2
  br tloop
exit:
  atomic_end
  %r = loadlocal count
  ret %r
}
)",
       "main", 5000, 669},

      {"churn", R"(
class Box { a: i64, b: i64, c: i64, d: i64 }

func main(n: i64): i64 {
  var i: i64
  var acc: i64
entry:
  storelocal i, 0
  storelocal acc, 0
  br loop
loop:
  %i = loadlocal i
  %n = loadlocal n
  %done = cmpge %i, %n
  condbr %done, exit, body
body:
  atomic_begin
  %box = newobj Box
  setfield %box, Box.a, %i
  %t = mul %i, 2
  setfield %box, Box.b, %t
  %u = add %i, 7
  setfield %box, Box.c, %u
  %va = getfield %box, Box.a
  %vb = getfield %box, Box.b
  %vc = getfield %box, Box.c
  %s = add %va, %vb
  %s2 = add %s, %vc
  setfield %box, Box.d, %s2
  %vd = getfield %box, Box.d
  atomic_end
  %a = loadlocal acc
  %a2 = add %a, %vd
  storelocal acc, %a2
  %i2 = add %i, 1
  storelocal i, %i2
  br loop
exit:
  %r = loadlocal acc
  ret %r
}
)",
       "main", 3000, 18015000},

      {"dotprod", R"(
func fill(n: i64, scale: i64): arr {
  var i: i64
entry:
  %n = loadlocal n
  %a = newarr %n
  storelocal i, 0
  br loop
loop:
  %i = loadlocal i
  %nn = loadlocal n
  %done = cmpge %i, %nn
  condbr %done, exit, body
body:
  %s = loadlocal scale
  %v = mul %i, %s
  arrset %a, %i, %v
  %i2 = add %i, 1
  storelocal i, %i2
  br loop
exit:
  ret %a
}

func main(n: i64): i64 {
  var i: i64
  var acc: i64
entry:
  %n = loadlocal n
  %a = call fill(%n, 1)
  %b = call fill(%n, 2)
  atomic_begin
  storelocal i, 0
  storelocal acc, 0
  br loop
loop:
  %i = loadlocal i
  %nn = loadlocal n
  %done = cmpge %i, %nn
  condbr %done, exit, body
body:
  %va = arrget %a, %i
  %vb = arrget %b, %i
  %p = mul %va, %vb
  %acc = loadlocal acc
  %acc2 = add %acc, %p
  storelocal acc, %acc2
  %i2 = add %i, 1
  storelocal i, %i2
  br loop
exit:
  atomic_end
  %r = loadlocal acc
  ret %r
}
)",
       "main", 300, 17910100},
  };
  Count = sizeof(Programs) / sizeof(Programs[0]);
  return Programs;
}

} // namespace bench
} // namespace otm

#endif // OTM_BENCH_TMIRPROGRAMS_H
