//===- bench/e3_scalability.cpp - E3: hashtable scalability ---------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// E3 (paper analogue: the atomic hashtable scalability figure, where the
// optimized STM tracks the hand-written fine-grained-lock table and beats
// the coarse lock as processors are added). This host may be single-core:
// in that case the threads timeshare and the figure degenerates to
// overhead-under-preemption; the companion abort statistics still show the
// STM behaving (committing, aborting on conflicts, never corrupting).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "containers/HashMap.h"
#include "support/Random.h"
#include "sync/FineGrainedHashMap.h"

#include <cstdio>
#include <string>

using namespace otm;
using namespace otm::bench;
using namespace otm::containers;

namespace {

constexpr int KeySpace = 8192;
constexpr int Buckets = 2048;
const int OpsPerThread = static_cast<int>(scaled(60000, 1500));
constexpr unsigned UpdatePercent = 20; // 10% insert + 10% erase

template <typename MapType>
void preload(MapType &Map) {
  for (int64_t K = 0; K < KeySpace; K += 2)
    Map.insert(K, K);
}

template <typename MapType>
void worker(MapType &Map, unsigned ThreadIdx) {
  Xoshiro256 Rng(9000 + ThreadIdx);
  for (int I = 0; I < OpsPerThread; ++I) {
    int64_t Key = static_cast<int64_t>(Rng.nextBelow(KeySpace));
    uint64_t Dice = Rng.nextBelow(100);
    if (Dice >= UpdatePercent) {
      Map.contains(Key);
    } else if (Dice < UpdatePercent / 2) {
      Map.insert(Key, Key);
    } else {
      Map.erase(Key);
    }
  }
}

template <typename PolicyType>
double runStmConfig(unsigned Threads, stm::TxStats &StatsOut) {
  HashMap<PolicyType> Map(Buckets);
  preload(Map);
  StatsCapture Capture;
  double Seconds = runThreads(
      Threads, [&](unsigned T) { worker(Map, T); });
  StatsOut = Capture.finish();
  return static_cast<double>(Threads) * OpsPerThread / Seconds / 1e6;
}

double runFineGrained(unsigned Threads) {
  sync::FineGrainedHashMap Map(Buckets);
  preload(Map);
  double Seconds = runThreads(
      Threads, [&](unsigned T) { worker(Map, T); });
  return static_cast<double>(Threads) * OpsPerThread / Seconds / 1e6;
}

} // namespace

int main() {
  // E12 owns the hardware A/B; pinning the HTM budget to zero keeps this
  // binary's gated counts identical across RTM and no-RTM machines.
  otm::stm::TxManager::config().HtmAttempts = 0;
  BenchReport Report("e3_scalability", "E3");
  unsigned Cores = std::thread::hardware_concurrency();
  std::printf("E3: hashtable throughput vs threads (Mops/s), %u%% updates, "
              "%d keys, host cores: %u\n",
              UpdatePercent, KeySpace, Cores);
  printHeaderRule();
  std::printf("%8s %12s %12s %12s %14s %12s %12s %18s\n", "threads", "coarse",
              "fine-lock", "word-stm", "obj-naive", "obj-opt", "boosted",
              "opt aborts/starts");
  printHeaderRule();
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    if (smokeMode() && Threads > 4)
      break;
    stm::TxStats Ignored;
    double Coarse = runStmConfig<CoarseLockPolicy>(Threads, Ignored);
    double Fine = runFineGrained(Threads);
    double Word = runStmConfig<WordStmPolicy>(Threads, Ignored);
    double Naive = runStmConfig<ObjStmNaivePolicy>(Threads, Ignored);
    stm::TxStats OptStats;
    double Opt = runStmConfig<ObjStmOptPolicy>(Threads, OptStats);
    double Boosted = runStmConfig<BoostedPolicy>(Threads, Ignored);
    std::printf("%8u %12.2f %12.2f %12.2f %14.2f %12.2f %12.2f %11llu/%-8llu\n",
                Threads, Coarse, Fine, Word, Naive, Opt, Boosted,
                static_cast<unsigned long long>(OptStats.Aborts),
                static_cast<unsigned long long>(OptStats.Starts));
    struct {
      const char *Config;
      double Mops;
    } Rows[] = {{"coarse", Coarse}, {"fine-lock", Fine}, {"word-stm", Word},
                {"obj-naive", Naive}, {"obj-opt", Opt}, {"boosted", Boosted}};
    for (auto &R : Rows) {
      obs::JsonValue Run = obs::JsonValue::object();
      Run.set("label",
              std::string(R.Config) + "/threads=" + std::to_string(Threads));
      Run.set("mops_per_sec", R.Mops);
      Run.set("threads", uint64_t(Threads));
      Report.addRun(std::move(Run));
    }
    Report.addSection("obj_opt_stats_t" + std::to_string(Threads),
                      stm::statsToJson(OptStats));
  }
  // Contention-manager sweep: the optimized object STM at a fixed thread
  // count under each policy (the main grid above ran the configured
  // default, backoff unless OTM_CM overrides).
  printHeaderRule();
  const unsigned CmThreads = smokeMode() ? 2 : 4;
  std::printf("contention-manager sweep (obj-opt, %u threads)\n", CmThreads);
  txn::CmPolicy Saved = stm::Stm::config().ContentionPolicy;
  for (txn::CmPolicy P :
       {txn::CmPolicy::Passive, txn::CmPolicy::Backoff, txn::CmPolicy::Karma,
        txn::CmPolicy::TimestampGreedy}) {
    stm::Stm::config().ContentionPolicy = P;
    stm::TxStats CmRunStats;
    double Mops = runStmConfig<ObjStmOptPolicy>(CmThreads, CmRunStats);
    txn::CmStatsSnapshot Cm = txn::CmStats::instance().snapshot();
    std::printf("%10s %10.2f Mops/s  %llu/%llu aborts/starts\n",
                txn::policyName(P), Mops,
                static_cast<unsigned long long>(CmRunStats.Aborts),
                static_cast<unsigned long long>(CmRunStats.Starts));
    obs::JsonValue Run = obs::JsonValue::object();
    Run.set("label", "obj-opt-cm=" + std::string(txn::policyName(P)) +
                         "/threads=" + std::to_string(CmThreads));
    Run.set("cm", txn::policyName(P));
    Run.set("mops_per_sec", Mops);
    Run.set("threads", uint64_t(CmThreads));
    Run.set("aborts", CmRunStats.Aborts);
    Run.set("starts", CmRunStats.Starts);
    Run.set("cm_conflict_waits", Cm.ConflictWaits);
    Run.set("cm_priority_aborts", Cm.PriorityAborts);
    Run.set("cm_fallback_entries", Cm.FallbackEntries);
    Report.addRun(std::move(Run));
  }
  stm::Stm::config().ContentionPolicy = Saved;
  printHeaderRule();
  std::printf("expected shape: obj-opt > obj-naive everywhere; on "
              "multi-core hosts obj-opt approaches fine-lock and passes "
              "coarse as threads grow; CM policies should be within noise "
              "of each other at this contention level\n");
  Report.write();
  return 0;
}
