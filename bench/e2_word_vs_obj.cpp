//===- bench/e2_word_vs_obj.cpp - E2: object vs word granularity ----------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// E2 (paper analogue: direct-update object STM vs word-based STM). A
// transaction reads all F fields of an object and writes one of them. The
// object STM pays one open + one undo log regardless of F; the word STM
// pays a lock-table probe and read-set entry per field. Sweeping F shows
// the object design's amortization — the reason the paper builds an
// object-granularity STM.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "stm/Stm.h"
#include "stm/TxArray.h"
#include "wstm/WordStm.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <memory>
#include <vector>

using namespace otm;
using namespace otm::bench;
using namespace otm::stm;
using namespace otm::wstm;

namespace {

constexpr int NumObjects = 256;
const int OpsPerConfig = static_cast<int>(scaled(200000, 2000));

/// Object STM: each "object" is a TxArray of F fields → one STM word.
double runObjStm(unsigned FieldsPerObject) {
  std::vector<std::unique_ptr<TxArray<int64_t>>> Objects;
  for (int I = 0; I < NumObjects; ++I) {
    Objects.push_back(std::make_unique<TxArray<int64_t>>(FieldsPerObject));
    for (unsigned F = 0; F < FieldsPerObject; ++F)
      Objects.back()->unsafeSet(F, F);
  }
  Xoshiro256 Rng(123);
  return timeIt([&] {
    for (int I = 0; I < OpsPerConfig; ++I) {
      TxArray<int64_t> &Obj = *Objects[Rng.nextBelow(NumObjects)];
      Stm::atomic([&](TxManager &Tx) {
        // Optimized placement: one open covers every field access.
        Tx.openForUpdate(&Obj);
        int64_t Sum = 0;
        for (unsigned F = 0; F < FieldsPerObject; ++F)
          Sum += Obj.slot(F).load();
        Tx.logUndo(&Obj.slot(0));
        Obj.slot(0).store(Sum & 0xff);
      });
    }
  }) / OpsPerConfig * 1e9;
}

/// Word STM: the same layout, but every field access is its own barrier.
double runWordStm(unsigned FieldsPerObject) {
  std::vector<std::unique_ptr<WCell<int64_t>[]>> Objects;
  for (int I = 0; I < NumObjects; ++I) {
    Objects.push_back(std::make_unique<WCell<int64_t>[]>(FieldsPerObject));
    for (unsigned F = 0; F < FieldsPerObject; ++F)
      Objects.back()[F].store(F);
  }
  Xoshiro256 Rng(123);
  return timeIt([&] {
    for (int I = 0; I < OpsPerConfig; ++I) {
      WCell<int64_t> *Obj = Objects[Rng.nextBelow(NumObjects)].get();
      WordStm::atomic([&](WTxManager &Tx) {
        int64_t Sum = 0;
        for (unsigned F = 0; F < FieldsPerObject; ++F)
          Sum += Tx.read(Obj[F]);
        Tx.write(Obj[0], Sum & 0xff);
      });
    }
  }) / OpsPerConfig * 1e9;
}

} // namespace

int main() {
  // E12 owns the hardware A/B; pinning the HTM budget to zero keeps this
  // binary's gated counts identical across RTM and no-RTM machines.
  otm::stm::TxManager::config().HtmAttempts = 0;
  BenchReport Report("e2_word_vs_obj", "E2");
  std::printf("E2: object-granularity (1 open/object) vs word-granularity "
              "(1 barrier/field)\n");
  std::printf("transaction = read F fields, write 1; single thread, %d "
              "objects\n", NumObjects);
  printHeaderRule();
  std::printf("%8s %14s %14s %10s\n", "fields", "obj-stm ns/op",
              "word-stm ns/op", "word/obj");
  printHeaderRule();
  for (unsigned F : {2u, 4u, 8u, 16u, 32u}) {
    // Best of three: a single-core host can timeslice mid-measurement.
    double Obj = 1e30, Word = 1e30;
    for (int Rep = 0, Reps = smokeMode() ? 1 : 3; Rep < Reps; ++Rep) {
      Obj = std::min(Obj, runObjStm(F));
      Word = std::min(Word, runWordStm(F));
    }
    std::printf("%8u %14.1f %14.1f %9.2fx\n", F, Obj, Word, Word / Obj);
    obs::JsonValue ObjRun = obs::JsonValue::object();
    ObjRun.set("label", "obj-stm/fields=" + std::to_string(F));
    ObjRun.set("ns_per_op", Obj);
    Report.addRun(std::move(ObjRun));
    obs::JsonValue WordRun = obs::JsonValue::object();
    WordRun.set("label", "word-stm/fields=" + std::to_string(F));
    WordRun.set("ns_per_op", Word);
    Report.addRun(std::move(WordRun));
  }
  printHeaderRule();
  std::printf("expected shape: ratio grows with F — object metadata "
              "amortizes, word metadata does not\n");
  Report.write();
  return 0;
}
