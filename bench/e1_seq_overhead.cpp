//===- bench/e1_seq_overhead.cpp - E1: single-thread STM overhead ---------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// E1 (paper analogue: the sequential-overhead figure). Single-threaded
// kernels over the transactional containers, executed under every
// synchronization configuration. The paper's headline: naive per-access
// barriers cost a multiple of sequential time; the optimized (one open per
// object) placement recovers most of it.
//
// Output: one row per kernel/config with ns/op and slowdown vs `seq`.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "containers/HashMap.h"
#include "containers/RBTree.h"
#include "containers/SkipList.h"
#include "containers/SortedList.h"
#include "interp/Interp.h"
#include "passes/Pipeline.h"
#include "support/Random.h"
#include "sync/HandOverHandList.h"
#include "tmir/Parser.h"
#include "tmir/Verifier.h"

#include <cstdio>
#include <string>

using namespace otm;
using namespace otm::bench;
using namespace otm::containers;

namespace {

const int ListOps = static_cast<int>(scaled(20000, 500));
const int MapOps = static_cast<int>(scaled(300000, 2000));
const int TreeOps = static_cast<int>(scaled(200000, 2000));
const int SkipOps = static_cast<int>(scaled(150000, 2000));

template <typename Policy> double kernelSortedList() {
  SortedList<Policy> List;
  for (int64_t K = 0; K < 200; K += 2)
    List.insert(K, K);
  Xoshiro256 Rng(11);
  return timeIt([&] {
    for (int I = 0; I < ListOps; ++I) {
      int64_t Key = static_cast<int64_t>(Rng.nextBelow(200));
      uint64_t Dice = Rng.nextBelow(100);
      if (Dice < 80) {
        List.contains(Key);
      } else if (Dice < 90) {
        List.insert(Key, Key);
      } else {
        List.erase(Key);
      }
    }
  }) / ListOps * 1e9;
}

double kernelHohList() {
  sync::HandOverHandList List;
  for (int64_t K = 0; K < 200; K += 2)
    List.insert(K, K);
  Xoshiro256 Rng(11);
  return timeIt([&] {
    for (int I = 0; I < ListOps; ++I) {
      int64_t Key = static_cast<int64_t>(Rng.nextBelow(200));
      uint64_t Dice = Rng.nextBelow(100);
      if (Dice < 80) {
        List.contains(Key);
      } else if (Dice < 90) {
        List.insert(Key, Key);
      } else {
        List.erase(Key);
      }
    }
  }) / ListOps * 1e9;
}

template <typename Policy> double kernelHashMap() {
  HashMap<Policy> Map(4096);
  for (int64_t K = 0; K < 4096; K += 2)
    Map.insert(K, K);
  Xoshiro256 Rng(22);
  return timeIt([&] {
    for (int I = 0; I < MapOps; ++I) {
      int64_t Key = static_cast<int64_t>(Rng.nextBelow(4096));
      uint64_t Dice = Rng.nextBelow(100);
      if (Dice < 80) {
        Map.contains(Key);
      } else if (Dice < 90) {
        Map.insert(Key, Key);
      } else {
        Map.erase(Key);
      }
    }
  }) / MapOps * 1e9;
}

template <typename Policy> double kernelRBTree() {
  RBTree<Policy> Tree;
  Xoshiro256 Seed(33);
  for (int I = 0; I < 8192; ++I)
    Tree.insert(static_cast<int64_t>(Seed.nextBelow(1 << 20)), I);
  Xoshiro256 Rng(44);
  return timeIt([&] {
    for (int I = 0; I < TreeOps; ++I) {
      int64_t Key = static_cast<int64_t>(Rng.nextBelow(1 << 20));
      uint64_t Dice = Rng.nextBelow(100);
      if (Dice < 80) {
        Tree.contains(Key);
      } else if (Dice < 90) {
        Tree.insert(Key, I);
      } else {
        Tree.erase(Key);
      }
    }
  }) / TreeOps * 1e9;
}

template <typename Policy> double kernelSkipList() {
  SkipList<Policy> List;
  Xoshiro256 Seed(55);
  for (int I = 0; I < 8192; ++I)
    List.insert(static_cast<int64_t>(Seed.nextBelow(1 << 20)), I);
  Xoshiro256 Rng(66);
  return timeIt([&] {
    for (int I = 0; I < SkipOps; ++I) {
      int64_t Key = static_cast<int64_t>(Rng.nextBelow(1 << 20));
      uint64_t Dice = Rng.nextBelow(100);
      if (Dice < 80) {
        List.contains(Key);
      } else if (Dice < 90) {
        List.insert(Key, I);
      } else {
        List.erase(Key);
      }
    }
  }) / SkipOps * 1e9;
}

// --- Interpreter dispatch floor -----------------------------------------
//
// The TMIR interpreter is the "compiled program" of experiments E5/E6/E8,
// so its dispatch cost is part of every measured barrier overhead. Two
// kernels pin it down:
//
//   interp-floor    straight-line arithmetic loop, no barriers — pure
//                   decode-execute cost per executed instruction, for both
//                   dispatch loops;
//   interp-counter  one-field atomic counter — the atomic-region overhead
//                   factor (atomic ns/op over ignore-atomic ns/op).
//
// Timing uses a benchmark-sized argument; the count columns re-run at a
// small fixed argument so the JSON rows stay deterministic for
// scripts/bench_diff.py regardless of host and smoke mode.

const char *const FloorSrc = R"(
func main(n: i64): i64 {
  var i: i64
  var acc: i64
entry:
  storelocal i, 0
  storelocal acc, 1
  br loop
loop:
  %i = loadlocal i
  %n = loadlocal n
  %done = cmpge %i, %n
  condbr %done, exit, body
body:
  %a = loadlocal acc
  %m = mul %a, 31
  %x = xor %m, %i
  %s = shr %x, 3
  %d = and %s, 1023
  %u = add %x, %d
  %v = sub %u, %i
  %w = or %v, 1
  storelocal acc, %w
  %i2 = add %i, 1
  storelocal i, %i2
  br loop
exit:
  %r = loadlocal acc
  ret %r
}
)";

const char *const CounterSrc = R"(
class Counter { val: i64 }

func main(n: i64): i64 {
  var i: i64
entry:
  %c = newobj Counter
  storelocal i, 0
  br loop
loop:
  %i = loadlocal i
  %n = loadlocal n
  %done = cmpge %i, %n
  condbr %done, exit, body
body:
  atomic_begin
  %v = getfield %c, Counter.val
  %v2 = add %v, 1
  setfield %c, Counter.val, %v2
  atomic_end
  %i2 = add %i, 1
  storelocal i, %i2
  br loop
exit:
  %r = getfield %c, Counter.val
  ret %r
}
)";

struct InterpRow {
  std::string Label;
  double NsPerOp = 0;      ///< timing (ns per instr for floor, per op else)
  uint64_t Instrs = 0;     ///< deterministic, from the fixed-arg run
  uint64_t Opens = 0;      ///< deterministic, from the fixed-arg run
  long long Result = 0;    ///< deterministic, from the fixed-arg run
};

InterpRow runInterp(const char *Src, std::string Label,
                    interp::Interpreter::TxMode Mode,
                    interp::Interpreter::Dispatch Loop,
                    const passes::OptConfig &Config, long long CountArg,
                    long long TimeArg, bool PerInstr) {
  using interp::Interpreter;
  auto MakeInterp = [&](tmir::Module &M) {
    tmir::verifyModuleOrDie(M);
    passes::lowerAndOptimize(M, Config);
    Interpreter::Options O;
    O.Mode = Mode;
    O.Loop = Loop;
    return Interpreter(M, O);
  };

  InterpRow Row;
  Row.Label = std::move(Label);
  {
    // Deterministic count columns at a fixed size.
    tmir::Module M = tmir::parseModuleOrDie(Src);
    Interpreter I = MakeInterp(M);
    Interpreter::RunResult R = I.run("main", {CountArg});
    if (R.Trapped) {
      std::fprintf(stderr, "e1: %s trapped: %s\n", Row.Label.c_str(),
                   R.Error.c_str());
      std::exit(1);
    }
    Row.Result = R.Value;
    Row.Instrs = I.counts().Instrs.load();
    Row.Opens = I.counts().OpenRead.load() + I.counts().OpenUpdate.load();
  }
  {
    // Timing at benchmark size.
    tmir::Module M = tmir::parseModuleOrDie(Src);
    Interpreter I = MakeInterp(M);
    double Seconds = timeIt([&] { I.run("main", {TimeArg}); });
    double Den = PerInstr ? double(I.counts().Instrs.load())
                          : double(TimeArg);
    Row.NsPerOp = Seconds / Den * 1e9;
  }
  return Row;
}

struct Row {
  const char *Kernel;
  double Seq, Coarse, Word, Naive, Opt;
};

template <template <typename> class KernelFor> Row runRow(const char *Name);

#define RUN_KERNEL(NAME, FN)                                                   \
  Row {                                                                        \
    NAME, FN<SeqPolicy>(), FN<CoarseLockPolicy>(), FN<WordStmPolicy>(),        \
        FN<ObjStmNaivePolicy>(), FN<ObjStmOptPolicy>()                         \
  }

void printRow(const Row &R) {
  auto Rel = [&](double V) { return V / R.Seq; };
  std::printf("%-12s %9.1f %9.1f(%4.1fx) %9.1f(%4.1fx) %9.1f(%4.1fx) "
              "%9.1f(%4.1fx)\n",
              R.Kernel, R.Seq, R.Coarse, Rel(R.Coarse), R.Word, Rel(R.Word),
              R.Naive, Rel(R.Naive), R.Opt, Rel(R.Opt));
}

} // namespace

int main() {
  // E12 owns the hardware A/B; pinning the HTM budget to zero keeps this
  // binary's gated counts identical across RTM and no-RTM machines.
  otm::stm::TxManager::config().HtmAttempts = 0;
  BenchReport Report("e1_seq_overhead", "E1");
  auto emitRow = [&](const Row &R) {
    printRow(R);
    const char *Configs[] = {"seq", "coarse-lock", "word-stm",
                             "obj-stm-naive", "obj-stm-opt"};
    double NsPerOp[] = {R.Seq, R.Coarse, R.Word, R.Naive, R.Opt};
    for (int I = 0; I < 5; ++I) {
      obs::JsonValue Run = obs::JsonValue::object();
      Run.set("label", std::string(R.Kernel) + "/" + Configs[I]);
      Run.set("ns_per_op", NsPerOp[I]);
      Report.addRun(std::move(Run));
    }
  };
  std::printf("E1: single-thread overhead, ns/op (slowdown vs seq)\n");
  std::printf("workloads: 80%% lookup / 10%% insert / 10%% erase\n");
  printHeaderRule();
  std::printf("%-12s %9s %16s %16s %16s %16s\n", "kernel", "seq",
              "coarse-lock", "word-stm", "obj-stm-naive", "obj-stm-opt");
  printHeaderRule();
  emitRow(RUN_KERNEL("sorted-list", kernelSortedList));
  std::printf("%-12s %9.1f   (hand-over-hand lock-coupling baseline)\n",
              "  hoh-list", kernelHohList());
  emitRow(RUN_KERNEL("hashmap", kernelHashMap));
  emitRow(RUN_KERNEL("rbtree", kernelRBTree));
  emitRow(RUN_KERNEL("skiplist", kernelSkipList));
  printHeaderRule();
  std::printf("expected shape: naive >> opt > coarse ~ seq; opt recovers "
              "most of the naive overhead\n");

  using interp::Interpreter;
  using passes::OptConfig;
  const long long FloorCountArg = 10000, FloorTimeArg = scaled(2000000, 20000);
  const long long CtrCountArg = 2000, CtrTimeArg = scaled(300000, 5000);
  InterpRow InterpRows[] = {
      runInterp(FloorSrc, "interp-floor/threaded",
                Interpreter::TxMode::IgnoreAtomic,
                Interpreter::Dispatch::Threaded, OptConfig::none(),
                FloorCountArg, FloorTimeArg, /*PerInstr=*/true),
      runInterp(FloorSrc, "interp-floor/switch",
                Interpreter::TxMode::IgnoreAtomic,
                Interpreter::Dispatch::Switch, OptConfig::none(),
                FloorCountArg, FloorTimeArg, /*PerInstr=*/true),
      runInterp(CounterSrc, "interp-counter/ignore-atomic",
                Interpreter::TxMode::IgnoreAtomic,
                Interpreter::Dispatch::Auto, OptConfig::none(), CtrCountArg,
                CtrTimeArg, /*PerInstr=*/false),
      runInterp(CounterSrc, "interp-counter/obj-stm-naive",
                Interpreter::TxMode::ObjStm, Interpreter::Dispatch::Auto,
                OptConfig::none(), CtrCountArg, CtrTimeArg,
                /*PerInstr=*/false),
      runInterp(CounterSrc, "interp-counter/obj-stm-opt",
                Interpreter::TxMode::ObjStm, Interpreter::Dispatch::Auto,
                OptConfig::all(), CtrCountArg, CtrTimeArg,
                /*PerInstr=*/false),
  };

  std::printf("\nTMIR interpreter dispatch floor (floor rows: ns/instr; "
              "counter rows: ns/op)%s\n",
              Interpreter::threadedDispatchAvailable()
                  ? ""
                  : " [threaded dispatch not compiled in: both floor rows "
                    "ran the switch loop]");
  printHeaderRule();
  for (const InterpRow &R : InterpRows) {
    std::printf("%-28s %9.2f\n", R.Label.c_str(), R.NsPerOp);
    obs::JsonValue Run = obs::JsonValue::object();
    Run.set("label", R.Label);
    Run.set("ns_per_op", R.NsPerOp);
    Run.set("instrs", R.Instrs);
    Run.set("opens", R.Opens);
    Run.set("result", int64_t(R.Result));
    Report.addRun(std::move(Run));
  }
  std::printf("atomic-region overhead factor (obj-stm-naive / "
              "ignore-atomic): %.2fx; optimized: %.2fx\n",
              InterpRows[3].NsPerOp / InterpRows[2].NsPerOp,
              InterpRows[4].NsPerOp / InterpRows[2].NsPerOp);
  Report.write();
  return 0;
}
