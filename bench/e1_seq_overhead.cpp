//===- bench/e1_seq_overhead.cpp - E1: single-thread STM overhead ---------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// E1 (paper analogue: the sequential-overhead figure). Single-threaded
// kernels over the transactional containers, executed under every
// synchronization configuration. The paper's headline: naive per-access
// barriers cost a multiple of sequential time; the optimized (one open per
// object) placement recovers most of it.
//
// Output: one row per kernel/config with ns/op and slowdown vs `seq`.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "containers/HashMap.h"
#include "containers/RBTree.h"
#include "containers/SkipList.h"
#include "containers/SortedList.h"
#include "support/Random.h"
#include "sync/HandOverHandList.h"

#include <cstdio>
#include <string>

using namespace otm;
using namespace otm::bench;
using namespace otm::containers;

namespace {

const int ListOps = static_cast<int>(scaled(20000, 500));
const int MapOps = static_cast<int>(scaled(300000, 2000));
const int TreeOps = static_cast<int>(scaled(200000, 2000));
const int SkipOps = static_cast<int>(scaled(150000, 2000));

template <typename Policy> double kernelSortedList() {
  SortedList<Policy> List;
  for (int64_t K = 0; K < 200; K += 2)
    List.insert(K, K);
  Xoshiro256 Rng(11);
  return timeIt([&] {
    for (int I = 0; I < ListOps; ++I) {
      int64_t Key = static_cast<int64_t>(Rng.nextBelow(200));
      uint64_t Dice = Rng.nextBelow(100);
      if (Dice < 80) {
        List.contains(Key);
      } else if (Dice < 90) {
        List.insert(Key, Key);
      } else {
        List.erase(Key);
      }
    }
  }) / ListOps * 1e9;
}

double kernelHohList() {
  sync::HandOverHandList List;
  for (int64_t K = 0; K < 200; K += 2)
    List.insert(K, K);
  Xoshiro256 Rng(11);
  return timeIt([&] {
    for (int I = 0; I < ListOps; ++I) {
      int64_t Key = static_cast<int64_t>(Rng.nextBelow(200));
      uint64_t Dice = Rng.nextBelow(100);
      if (Dice < 80) {
        List.contains(Key);
      } else if (Dice < 90) {
        List.insert(Key, Key);
      } else {
        List.erase(Key);
      }
    }
  }) / ListOps * 1e9;
}

template <typename Policy> double kernelHashMap() {
  HashMap<Policy> Map(4096);
  for (int64_t K = 0; K < 4096; K += 2)
    Map.insert(K, K);
  Xoshiro256 Rng(22);
  return timeIt([&] {
    for (int I = 0; I < MapOps; ++I) {
      int64_t Key = static_cast<int64_t>(Rng.nextBelow(4096));
      uint64_t Dice = Rng.nextBelow(100);
      if (Dice < 80) {
        Map.contains(Key);
      } else if (Dice < 90) {
        Map.insert(Key, Key);
      } else {
        Map.erase(Key);
      }
    }
  }) / MapOps * 1e9;
}

template <typename Policy> double kernelRBTree() {
  RBTree<Policy> Tree;
  Xoshiro256 Seed(33);
  for (int I = 0; I < 8192; ++I)
    Tree.insert(static_cast<int64_t>(Seed.nextBelow(1 << 20)), I);
  Xoshiro256 Rng(44);
  return timeIt([&] {
    for (int I = 0; I < TreeOps; ++I) {
      int64_t Key = static_cast<int64_t>(Rng.nextBelow(1 << 20));
      uint64_t Dice = Rng.nextBelow(100);
      if (Dice < 80) {
        Tree.contains(Key);
      } else if (Dice < 90) {
        Tree.insert(Key, I);
      } else {
        Tree.erase(Key);
      }
    }
  }) / TreeOps * 1e9;
}

template <typename Policy> double kernelSkipList() {
  SkipList<Policy> List;
  Xoshiro256 Seed(55);
  for (int I = 0; I < 8192; ++I)
    List.insert(static_cast<int64_t>(Seed.nextBelow(1 << 20)), I);
  Xoshiro256 Rng(66);
  return timeIt([&] {
    for (int I = 0; I < SkipOps; ++I) {
      int64_t Key = static_cast<int64_t>(Rng.nextBelow(1 << 20));
      uint64_t Dice = Rng.nextBelow(100);
      if (Dice < 80) {
        List.contains(Key);
      } else if (Dice < 90) {
        List.insert(Key, I);
      } else {
        List.erase(Key);
      }
    }
  }) / SkipOps * 1e9;
}

struct Row {
  const char *Kernel;
  double Seq, Coarse, Word, Naive, Opt;
};

template <template <typename> class KernelFor> Row runRow(const char *Name);

#define RUN_KERNEL(NAME, FN)                                                   \
  Row {                                                                        \
    NAME, FN<SeqPolicy>(), FN<CoarseLockPolicy>(), FN<WordStmPolicy>(),        \
        FN<ObjStmNaivePolicy>(), FN<ObjStmOptPolicy>()                         \
  }

void printRow(const Row &R) {
  auto Rel = [&](double V) { return V / R.Seq; };
  std::printf("%-12s %9.1f %9.1f(%4.1fx) %9.1f(%4.1fx) %9.1f(%4.1fx) "
              "%9.1f(%4.1fx)\n",
              R.Kernel, R.Seq, R.Coarse, Rel(R.Coarse), R.Word, Rel(R.Word),
              R.Naive, Rel(R.Naive), R.Opt, Rel(R.Opt));
}

} // namespace

int main() {
  BenchReport Report("e1_seq_overhead", "E1");
  auto emitRow = [&](const Row &R) {
    printRow(R);
    const char *Configs[] = {"seq", "coarse-lock", "word-stm",
                             "obj-stm-naive", "obj-stm-opt"};
    double NsPerOp[] = {R.Seq, R.Coarse, R.Word, R.Naive, R.Opt};
    for (int I = 0; I < 5; ++I) {
      obs::JsonValue Run = obs::JsonValue::object();
      Run.set("label", std::string(R.Kernel) + "/" + Configs[I]);
      Run.set("ns_per_op", NsPerOp[I]);
      Report.addRun(std::move(Run));
    }
  };
  std::printf("E1: single-thread overhead, ns/op (slowdown vs seq)\n");
  std::printf("workloads: 80%% lookup / 10%% insert / 10%% erase\n");
  printHeaderRule();
  std::printf("%-12s %9s %16s %16s %16s %16s\n", "kernel", "seq",
              "coarse-lock", "word-stm", "obj-stm-naive", "obj-stm-opt");
  printHeaderRule();
  emitRow(RUN_KERNEL("sorted-list", kernelSortedList));
  std::printf("%-12s %9.1f   (hand-over-hand lock-coupling baseline)\n",
              "  hoh-list", kernelHohList());
  emitRow(RUN_KERNEL("hashmap", kernelHashMap));
  emitRow(RUN_KERNEL("rbtree", kernelRBTree));
  emitRow(RUN_KERNEL("skiplist", kernelSkipList));
  printHeaderRule();
  std::printf("expected shape: naive >> opt > coarse ~ seq; opt recovers "
              "most of the naive overhead\n");
  Report.write();
  return 0;
}
