//===- bench/e11_server.cpp - E11: server-shaped open-loop workload -------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// E11 (admission-scheduler A/B): the repo's standing "production traffic"
// gate. Requests are server-shaped — Zipf-popular keys over a table of
// transactional rows, a configurable read/write mix and transaction size —
// and arrive OPEN-LOOP: each thread follows an absolute-deadline schedule
// (deadline_i = start + (i+1)*period) instead of issuing back-to-back, so
// end-to-end latency includes the queueing backlog a saturated server
// accumulates; a closed loop would hide exactly the delay this experiment
// exists to measure. Reported per cell: p50/p99/p999/max end-to-end latency
// (completion minus deadline, ns) and goodput (committed requests/s).
//
// Four arms per thread count, one knob apart:
//
//   spec      pure speculation (scheduler mode off) — the baseline;
//   sched     admission always on, footprints DECLARED up front;
//   adaptive  admission armed per class by measured abort rates;
//   sampled   admission on, footprints SAMPLED from a first speculative
//             attempt (no caller knowledge).
//
// The offered load is identical across arms at a given thread count:
// OTM_E11_RATE=<req/s> fixes it absolutely, and by default a closed-loop
// calibration run (spec mode) measures the service rate and offers 90% of
// it — near saturation, where turning aborts into queueing pays or fails
// visibly. On a single-core host one request in ten yields mid-transaction
// (the E7 overlap emulation); all randomness is drawn OUTSIDE the
// transaction bodies so retries replay the same request and every cell
// commits exactly threads*requests transactions (the count gate relies on
// this — latency/rate fields and nd_ counters carry everything
// interleaving-dependent).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "stm/Stm.h"
#include "support/Random.h"
#include "txn/AdmissionScheduler.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace otm;
using namespace otm::bench;
using namespace otm::stm;

namespace {

constexpr unsigned Rows = 4096;    // server table size (Zipf keyspace)
constexpr unsigned TxSize = 8;     // keys touched per request
constexpr unsigned WritePct = 50;  // per-key probability of read-modify-write
constexpr uint32_t TableClass = 11; // the one admission class of this bench

const int RequestsPerThread = static_cast<int>(scaled(3000, 60));
const int CalibrateRequests = static_cast<int>(scaled(1000, 40));

struct Row : TxObject {
  Field<int64_t> Value;
};

using Table = std::vector<std::unique_ptr<Row>>;

enum class Arm { Spec, Sched, Adaptive, Sampled };

const char *armName(Arm A) {
  switch (A) {
  case Arm::Spec:
    return "spec";
  case Arm::Sched:
    return "sched";
  case Arm::Adaptive:
    return "adaptive";
  case Arm::Sampled:
    return "sampled";
  }
  return "?";
}

/// One pre-drawn request: keys, per-key write flags, and the overlap-yield
/// flag — everything random decided before the transaction starts, so a
/// retried body replays the identical request.
struct Request {
  uint32_t Keys[TxSize];
  bool Writes[TxSize];
  bool Yield;
};

Request drawRequest(Xoshiro256 &Role, KeyDist &Keys) {
  Request R;
  for (unsigned K = 0; K < TxSize; ++K) {
    R.Keys[K] = static_cast<uint32_t>(Keys.next());
    R.Writes[K] = Role.nextPercent(WritePct);
  }
  R.Yield = Role.nextPercent(10);
  return R;
}

/// Executes one request transactionally under the given arm.
void serveRequest(Arm A, Table &T, const Request &R, int64_t &Sink) {
  auto Body = [&](TxManager &Tx) {
    int64_t Sum = 0;
    for (unsigned K = 0; K < TxSize; ++K) {
      Row *Obj = T[R.Keys[K]].get();
      if (R.Writes[K]) {
        Tx.openForUpdate(Obj);
        Tx.logUndo(&Obj->Value);
        Obj->Value.store(Obj->Value.load() + 1);
      } else {
        Tx.openForRead(Obj);
        Sum += Obj->Value.load();
      }
    }
    if (R.Yield)
      std::this_thread::yield();
    Sink += Sum;
  };
  switch (A) {
  case Arm::Spec:
    Stm::atomic(Body);
    break;
  case Arm::Sched:
  case Arm::Adaptive: {
    // Declared footprint: a server request handler knows its keys up
    // front. Same key convention as the sampled path (row addresses).
    txn::TxSummary S;
    for (unsigned K = 0; K < TxSize; ++K) {
      uint64_t Addr = reinterpret_cast<uintptr_t>(T[R.Keys[K]].get());
      if (R.Writes[K])
        S.addWrite(Addr);
      else
        S.addRead(Addr);
    }
    Stm::atomicScheduled(TableClass, S, Body);
    break;
  }
  case Arm::Sampled:
    Stm::atomicScheduled(TableClass, Body);
    break;
  }
}

void setArmMode(Arm A) {
  auto &Sched = txn::AdmissionScheduler::instance();
  Sched.resetForTesting();
  switch (A) {
  case Arm::Spec:
    Sched.setMode(txn::SchedMode::Off);
    break;
  case Arm::Sched:
  case Arm::Sampled:
    Sched.setMode(txn::SchedMode::On);
    break;
  case Arm::Adaptive:
    Sched.setMode(txn::SchedMode::Adaptive);
    break;
  }
}

/// Closed-loop service-rate probe (spec mode): how fast can \p NumThreads
/// drain requests back-to-back? The open-loop cells offer 90% of this.
double calibrateRate(Table &T, unsigned NumThreads) {
  setArmMode(Arm::Spec);
  StatsCapture Capture;
  std::vector<int64_t> Sink(NumThreads, 0);
  double Seconds = runThreads(NumThreads, [&](unsigned Tid) {
    Xoshiro256 Role(11100 + Tid);
    KeyDist Keys = KeyDist::zipf(Rows, 11200 + Tid);
    for (int I = 0; I < CalibrateRequests; ++I) {
      Request R = drawRequest(Role, Keys);
      serveRequest(Arm::Spec, T, R, Sink[Tid]);
    }
  });
  Capture.finish();
  return NumThreads * static_cast<double>(CalibrateRequests) / Seconds;
}

/// One open-loop cell: \p NumThreads threads, one arm, offered aggregate
/// load \p RatePerSec.
void runCell(Arm A, unsigned NumThreads, double RatePerSec,
             BenchReport &Report) {
  using Clock = std::chrono::steady_clock;
  Table T;
  T.reserve(Rows);
  for (unsigned I = 0; I < Rows; ++I)
    T.push_back(std::make_unique<Row>());

  setArmMode(A);
  auto PeriodNs = std::chrono::nanoseconds(static_cast<uint64_t>(
      1e9 * static_cast<double>(NumThreads) / RatePerSec));
  txn::SchedStatsSnapshot SchedBefore =
      txn::AdmissionScheduler::instance().stats();

  std::vector<obs::Histogram> Lat(NumThreads);
  std::vector<int64_t> Sink(NumThreads, 0);
  StatsCapture Capture;
  double Seconds = runThreads(NumThreads, [&](unsigned Tid) {
    Xoshiro256 Role(11100 + Tid);
    KeyDist Keys = KeyDist::zipf(Rows, 11200 + Tid);
    obs::Histogram &H = Lat[Tid];
    Clock::time_point Start = Clock::now();
    for (int I = 0; I < RequestsPerThread; ++I) {
      // Open loop: the request exists at its deadline whether or not the
      // server is ready; running late means the backlog charges every
      // subsequent request's latency.
      Clock::time_point Deadline = Start + (I + 1) * PeriodNs;
      std::this_thread::sleep_until(Deadline); // no-op when already late
      Request R = drawRequest(Role, Keys);
      serveRequest(A, T, R, Sink[Tid]);
      H.record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               Deadline)
              .count()));
    }
  });
  stm::TxStats S = Capture.finish();
  txn::SchedStatsSnapshot SchedAfter =
      txn::AdmissionScheduler::instance().stats();

  obs::Histogram All;
  for (const obs::Histogram &H : Lat)
    All.merge(H);
  uint64_t Ops = NumThreads * static_cast<uint64_t>(RequestsPerThread);
  double Goodput = static_cast<double>(S.Commits) / Seconds;
  double AbortPct = S.Starts ? 100.0 * static_cast<double>(S.Aborts) /
                                   static_cast<double>(S.Starts)
                             : 0.0;
  std::printf("%-8s %7u %9.0f %10.1f %9.2f%% %10.0f %10.0f %11.0f %10.0f\n",
              armName(A), NumThreads, RatePerSec, Goodput / 1e3, AbortPct,
              All.percentile(50.0), All.percentile(99.0),
              All.percentile(99.9), static_cast<double>(All.max()));

  obs::JsonValue Run = makeRun("arm=" + std::string(armName(A)) +
                                   "/threads=" + std::to_string(NumThreads),
                               Seconds, Ops);
  Run.set("arm", armName(A));
  Run.set("threads", NumThreads);
  Run.set("commits", S.Commits); // == ops: every request commits exactly once
  Run.set("goodput_per_sec", Goodput);
  Run.set("arrival_rate_per_sec", RatePerSec);
  Run.set("nd_aborts", S.Aborts);
  Run.set("abort_percent", AbortPct);
  Run.set("p50_latency_ns", All.percentile(50.0));
  Run.set("p99_latency_ns", All.percentile(99.0));
  Run.set("p999_latency_ns", All.percentile(99.9));
  Run.set("max_latency_ns", static_cast<double>(All.max()));
  // Scheduler decisions for THIS cell (the global counters survive the
  // StatsCapture reset, so delta around the cell).
  Run.set("nd_sched_admitted", SchedAfter.AdmittedImmediate -
                                   SchedBefore.AdmittedImmediate);
  Run.set("nd_sched_queued", SchedAfter.Queued - SchedBefore.Queued);
  Run.set("nd_sched_overflows",
          SchedAfter.QueueOverflows - SchedBefore.QueueOverflows);
  Run.set("nd_sched_timeouts",
          SchedAfter.TimeoutBypasses - SchedBefore.TimeoutBypasses);
  Run.set("nd_sched_bypassed", SchedAfter.Bypassed - SchedBefore.Bypassed);
  Run.set("nd_sched_gate_flips_on",
          SchedAfter.GateFlipsOn - SchedBefore.GateFlipsOn);
  Run.set("nd_sched_max_queue_depth", SchedAfter.MaxQueueDepth);
  Run.set("sched_queue_wait_us",
          SchedAfter.QueueWaitMicros - SchedBefore.QueueWaitMicros);
  Report.addRun(std::move(Run));
}

} // namespace

int main() {
  // E12 owns the hardware A/B; pinning the HTM budget to zero keeps this
  // binary's gated counts identical across RTM and no-RTM machines.
  otm::stm::TxManager::config().HtmAttempts = 0;
  BenchReport Report("e11_server", "E11");
  std::printf("E11: open-loop server workload (rows=%u, %u keys/tx, %u%% "
              "writes/key, zipf skew=%.2f, %d req/thread)\n",
              Rows, TxSize, WritePct, BenchZipfSkew, RequestsPerThread);
  if (!txn::AdmissionScheduler::compiledIn())
    std::printf("NOTE: built with OTM_SCHED=0 — sched/adaptive/sampled arms "
                "run unadmitted (identical to spec)\n");
  double RateOverride = 0.0;
  if (const char *E = std::getenv("OTM_E11_RATE"))
    RateOverride = std::atof(E);
  printHeaderRule();
  std::printf("%-8s %7s %9s %10s %10s %10s %10s %11s %10s\n", "arm",
              "threads", "offered", "Kgood/s", "abort%", "p50ns", "p99ns",
              "p999ns", "maxns");
  printHeaderRule();
  for (unsigned NumThreads : {2u, 8u}) {
    // One offered load per thread count, shared by all four arms: either
    // the OTM_E11_RATE override or 90% of the measured closed-loop service
    // rate (near saturation — where the scheduling-vs-speculation tradeoff
    // actually bites).
    double Rate = RateOverride;
    if (Rate <= 0.0) {
      Table Cal;
      Cal.reserve(Rows);
      for (unsigned I = 0; I < Rows; ++I)
        Cal.push_back(std::make_unique<Row>());
      Rate = 0.9 * calibrateRate(Cal, NumThreads);
    }
    for (Arm A : {Arm::Spec, Arm::Sched, Arm::Adaptive, Arm::Sampled})
      runCell(A, NumThreads, Rate, Report);
  }
  // Leave the process-wide mode as the environment configured it.
  txn::AdmissionScheduler::instance().resetForTesting();
  printHeaderRule();
  std::printf("expected shape: at saturation the spec arm burns its headroom "
              "on aborted speculation — the backlog grows and the latency "
              "tail stretches. Admission (declared or sampled) trades those "
              "aborts for bounded queueing: fewer aborts, higher goodput, "
              "and a shorter p99/p999. The adaptive arm starts off and "
              "should converge onto the same win once the abort storm arms "
              "its gate.\n");
  Report.write();
  return 0;
}
