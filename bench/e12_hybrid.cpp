//===- bench/e12_hybrid.cpp - E12: hybrid HTM/STM execution tier ---------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// E12 (HTM A/B): the same read-modify-write workload run with the hardware
// rung enabled (mode=htm, OTM_HTM_ATTEMPTS-equivalent budget of 8) and
// disabled (mode=stm, budget 0), sweeping thread count and transaction
// footprint (objects touched per transaction):
//
//   - small footprints are the hardware tier's target: the whole write set
//     fits in L1 speculative state, so an uncontended transaction commits
//     in one xbegin/xend pair with no logging, locking, or validation;
//   - large footprints probe the capacity cliff: attempts burn cycles in
//     the speculative region, abort on overflow, and fall back, so the
//     hardware budget is pure overhead there.
//
// Reported per cell: ns/transaction (the headline A/B number), the
// hardware hit rate (HtmCommits / Commits), and the abort-code breakdown
// from the contention-management counters (conflict / capacity / locked /
// explicit / other) — the attribution the ladder's tuning depends on.
//
// Determinism: thread count, footprint, and transaction counts are fixed,
// so txns and commits are exact run to run and gated by bench_diff. How
// many of those commits happened in hardware depends on the machine (a
// no-RTM host reports hit rate 0 and identical commit totals — the
// same-answers contract the HtmDifferential test enforces), so every HTM
// counter is emitted under nd_-prefixed keys.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "stm/Stm.h"
#include "txn/Htm.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace otm;
using namespace otm::bench;
using namespace otm::stm;

namespace {

const int TxPerThread = static_cast<int>(scaled(20000, 400));
constexpr unsigned PoolSize = 8192;

struct Item : TxObject {
  Field<int64_t> Value;
};

/// One grid cell: \p NumThreads threads each run TxPerThread transactions
/// incrementing \p Footprint pool objects, with the hardware budget set to
/// \p HtmBudget attempts. Threads stride through disjoint-leaning regions
/// of the pool (start = T * stride) so contention stays moderate and the
/// A/B difference isolates the execution tier, not the conflict rate.
void runCell(unsigned NumThreads, unsigned Footprint, unsigned HtmBudget,
             BenchReport &Report) {
  TxManager::config().HtmAttempts = HtmBudget;
  std::vector<std::unique_ptr<Item>> Pool;
  Pool.reserve(PoolSize);
  for (unsigned I = 0; I < PoolSize; ++I)
    Pool.push_back(std::make_unique<Item>());

  StatsCapture Capture;
  txn::CmStatsSnapshot CmBefore = txn::CmStats::instance().snapshot();
  double Seconds = runThreads(NumThreads, [&](unsigned T) {
    const unsigned Stride = PoolSize / (NumThreads ? NumThreads : 1);
    const unsigned Base = T * Stride;
    for (int I = 0; I < TxPerThread; ++I) {
      const unsigned First = Base + (unsigned(I) * 7) % (Stride ? Stride : 1);
      Stm::atomic([&](TxManager &Tx) {
        for (unsigned N = 0; N < Footprint; ++N) {
          Item *Obj = Pool[(First + N) % PoolSize].get();
          Tx.write(Obj, &Item::Value, Tx.read(Obj, &Item::Value) + 1);
        }
      });
    }
  });

  stm::TxStats S = Capture.finish();
  txn::CmStatsSnapshot Cm = txn::CmStats::instance().snapshot();
  const uint64_t TotalTx = uint64_t(NumThreads) * uint64_t(TxPerThread);
  double NsPerTx = TotalTx ? Seconds * 1e9 / double(TotalTx) : 0;
  double HitPercent =
      S.Commits ? 100.0 * double(S.HtmCommits) / double(S.Commits) : 0;
  const char *Mode = HtmBudget ? "htm" : "stm";
  std::printf("%-5s %7u %9u %10.0f %8.1f%% %9llu %9llu %9llu %9llu %9llu\n",
              Mode, NumThreads, Footprint, NsPerTx, HitPercent,
              static_cast<unsigned long long>(S.HtmCommits),
              static_cast<unsigned long long>(Cm.HtmAbortsConflict -
                                              CmBefore.HtmAbortsConflict),
              static_cast<unsigned long long>(Cm.HtmAbortsCapacity -
                                              CmBefore.HtmAbortsCapacity),
              static_cast<unsigned long long>(Cm.HtmAbortsLocked -
                                              CmBefore.HtmAbortsLocked),
              static_cast<unsigned long long>(Cm.HtmFallbacks -
                                              CmBefore.HtmFallbacks));

  obs::JsonValue Run = obs::JsonValue::object();
  Run.set("label", "mode=" + std::string(Mode) +
                       "/threads=" + std::to_string(NumThreads) +
                       "/footprint=" + std::to_string(Footprint));
  Run.set("mode", Mode);
  Run.set("threads", uint64_t(NumThreads));
  Run.set("footprint", uint64_t(Footprint));
  // Deterministic counts (fixed grid; every transaction commits exactly
  // once on some tier, so the totals are machine-independent).
  Run.set("txns", TotalTx);
  Run.set("commits", S.Commits);
  // Timing (skipped by the count gate via the _ns/_percent suffixes).
  Run.set("txn_ns", NsPerTx);
  Run.set("htm_hit_percent", HitPercent);
  // Machine-dependent: how the commits split across the tiers and why the
  // hardware attempts aborted (nd_ prefix: skipped by the count gate).
  Run.set("nd_htm_attempts", S.HtmAttempts);
  Run.set("nd_htm_commits", S.HtmCommits);
  Run.set("nd_htm_aborts_conflict",
          Cm.HtmAbortsConflict - CmBefore.HtmAbortsConflict);
  Run.set("nd_htm_aborts_capacity",
          Cm.HtmAbortsCapacity - CmBefore.HtmAbortsCapacity);
  Run.set("nd_htm_aborts_locked",
          Cm.HtmAbortsLocked - CmBefore.HtmAbortsLocked);
  Run.set("nd_htm_aborts_explicit",
          Cm.HtmAbortsExplicit - CmBefore.HtmAbortsExplicit);
  Run.set("nd_htm_aborts_other", Cm.HtmAbortsOther - CmBefore.HtmAbortsOther);
  Run.set("nd_htm_fallbacks", Cm.HtmFallbacks - CmBefore.HtmFallbacks);
  Run.set("nd_stm_aborts", S.Aborts);
  Report.addRun(std::move(Run));
}

} // namespace

int main() {
  BenchReport Report("e12_hybrid", "E12");
  const txn::htm::HtmRuntime &R = txn::htm::HtmRuntime::instance();
  std::printf("E12: hybrid HTM/STM A/B, %d txns/thread over a %u-object pool "
              "(compile=%d cpuid=%d probe=%d env_off=%d -> available=%d)\n",
              TxPerThread, PoolSize, int(OTM_HTM != 0), R.cpuidSupported(),
              R.probeCommitted(), R.envDisabled(), R.available());
  if (!R.available())
    std::printf("NOTE: no working RTM here — mode=htm rows run the software "
                "ladder (hit rate 0, identical commit totals)\n");
  printHeaderRule();
  std::printf("%-5s %7s %9s %10s %9s %9s %9s %9s %9s %9s\n", "mode", "threads",
              "footprint", "ns/txn", "hw_hit", "hw_commit", "conflict",
              "capacity", "locked", "fallback");
  printHeaderRule();
  for (unsigned Footprint : {4u, 64u})
    for (unsigned Threads : {1u, 2u, 4u, 8u})
      for (unsigned HtmBudget : {0u, 8u})
        runCell(Threads, Footprint, HtmBudget, Report);
  printHeaderRule();
  std::printf("expected shape: at footprint 4 the htm rows cut ns/txn well "
              "below the stm rows at every thread count (no logging, no "
              "commit-time locking) with hit rates near 100%%. footprint 64 "
              "probes the capacity cliff, whose location is machine-"
              "dependent: where the write set still fits in speculative "
              "state the gap widens (the software tier's per-object cost "
              "grows with the footprint, the hardware tier's barely does), "
              "and past it capacity aborts collapse the hit rate and the "
              "two modes converge.\n");
  Report.write();
  return 0;
}
