//===- bench/e0_barrier_micro.cpp - barrier cost microbenchmarks ----------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Google-benchmark microbenchmarks of the individual STM primitives that
// every figure above is built from: the open barriers, undo logging, the
// runtime hash filter, commit costs for read-only vs writer transactions,
// and the word-STM read barrier for comparison.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "stm/HashFilter.h"
#include "stm/LogEntries.h"
#include "stm/Stm.h"
#include "support/ChunkedVector.h"
#include "support/TxPool.h"
#include "wstm/WordStm.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

using namespace otm;
using namespace otm::stm;
using namespace otm::wstm;

namespace {

struct Cell : TxObject {
  Field<int64_t> Value;
};

void BM_ReadOnlyTx(benchmark::State &State) {
  Cell C;
  for (auto _ : State) {
    int64_t V = 0;
    Stm::atomic([&](TxManager &Tx) { V = Tx.read(&C, &Cell::Value); });
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_ReadOnlyTx);

void BM_WriterTx(benchmark::State &State) {
  Cell C;
  for (auto _ : State)
    Stm::atomic([&](TxManager &Tx) {
      Tx.write(&C, &Cell::Value, int64_t{1});
    });
}
BENCHMARK(BM_WriterTx);

void BM_OpenForRead(benchmark::State &State) {
  // Cost of the read barrier inside an already-running transaction,
  // including the filter hit for repeats.
  std::vector<std::unique_ptr<Cell>> Cells;
  for (int I = 0; I < 64; ++I)
    Cells.push_back(std::make_unique<Cell>());
  for (auto _ : State) {
    Stm::atomic([&](TxManager &Tx) {
      for (auto &C : Cells)
        Tx.openForRead(C.get());
    });
  }
  State.SetItemsProcessed(State.iterations() * 64);
}
BENCHMARK(BM_OpenForRead);

void BM_OpenForUpdate(benchmark::State &State) {
  std::vector<std::unique_ptr<Cell>> Cells;
  for (int I = 0; I < 64; ++I)
    Cells.push_back(std::make_unique<Cell>());
  for (auto _ : State) {
    Stm::atomic([&](TxManager &Tx) {
      for (auto &C : Cells)
        Tx.openForUpdate(C.get());
    });
  }
  State.SetItemsProcessed(State.iterations() * 64);
}
BENCHMARK(BM_OpenForUpdate);

void BM_LogUndoFiltered(benchmark::State &State) {
  Cell C;
  for (auto _ : State) {
    Stm::atomic([&](TxManager &Tx) {
      Tx.openForUpdate(&C);
      for (int I = 0; I < 64; ++I) {
        Tx.logUndo(&C.Value);
        C.Value.store(I);
      }
    });
  }
  State.SetItemsProcessed(State.iterations() * 64);
}
BENCHMARK(BM_LogUndoFiltered);

void BM_WordStmRead(benchmark::State &State) {
  WCell<int64_t> Cells[64];
  for (auto _ : State) {
    WordStm::atomic([&](WTxManager &Tx) {
      int64_t Sum = 0;
      for (WCell<int64_t> &C : Cells)
        Sum += Tx.read(C);
      benchmark::DoNotOptimize(Sum);
    });
  }
  State.SetItemsProcessed(State.iterations() * 64);
}
BENCHMARK(BM_WordStmRead);

void BM_HashFilterInsert(benchmark::State &State) {
  HashFilter Filter;
  uintptr_t Key = 0x1000;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Filter.insert(Key));
    Key += 64;
    if ((Key & 0xffff) == 0)
      Filter.clear();
  }
}
BENCHMARK(BM_HashFilterInsert);

void BM_LogAppend(benchmark::State &State) {
  // The pointer-bump append/clear cycle of the log container itself: the
  // unit cost under every enlistment (read log shown; all logs share it).
  ChunkedVector<ReadEntry> Log;
  Cell C;
  for (auto _ : State) {
    for (int I = 0; I < 64; ++I)
      Log.emplaceBack(&C, WordValue{0});
    benchmark::DoNotOptimize(Log.size());
    Log.clear();
  }
  State.SetItemsProcessed(State.iterations() * 64);
}
BENCHMARK(BM_LogAppend);

void BM_ValidateScan(benchmark::State &State) {
  // Commit-time read-set validation: chunk-wise walk of a 256-entry read
  // log with one dependent STM-word load per entry (prefetched one ahead).
  std::vector<std::unique_ptr<Cell>> Cells;
  for (int I = 0; I < 256; ++I)
    Cells.push_back(std::make_unique<Cell>());
  TxManager &Tx = TxManager::current();
  Tx.begin();
  for (auto &C : Cells)
    Tx.openForRead(C.get());
  for (auto _ : State)
    benchmark::DoNotOptimize(Tx.validate());
  Tx.tryCommit();
  State.SetItemsProcessed(State.iterations() * 256);
}
BENCHMARK(BM_ValidateScan);

void BM_AllocAbortChurn(benchmark::State &State) {
  // Abort-heavy allocation churn: every attempt allocates one object and
  // aborts, so the object round-trips allocInTx -> epoch retirement ->
  // TxPool free list instead of malloc/free.
  for (auto _ : State) {
    Stm::atomic([&](TxManager &Tx) {
      Cell *C = Tx.allocInTx<Cell>();
      benchmark::DoNotOptimize(C);
      Tx.userAbort();
    });
  }
}
BENCHMARK(BM_AllocAbortChurn);

void BM_TxPoolAllocFree(benchmark::State &State) {
  // The pool fast path by itself: same-thread allocate/deallocate pair
  // (free-list pop + push) for a transactional-object-sized block.
  for (auto _ : State) {
    void *P = support::TxPool::allocate(sizeof(Cell));
    benchmark::DoNotOptimize(P);
    support::TxPool::deallocate(P);
  }
}
BENCHMARK(BM_TxPoolAllocFree);

void BM_UncontendedRawLoad(benchmark::State &State) {
  // The floor every barrier is compared against.
  Cell C;
  for (auto _ : State)
    benchmark::DoNotOptimize(C.Value.load());
}
BENCHMARK(BM_UncontendedRawLoad);

/// Console output as usual, plus every run captured into the BENCH_E0.json
/// document (ns/op per primitive is the paper's Table-barrier-cost data).
class JsonCaptureReporter : public benchmark::ConsoleReporter {
public:
  explicit JsonCaptureReporter(bench::BenchReport &Report) : Report(Report) {}

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      if (R.error_occurred)
        continue;
      obs::JsonValue J = obs::JsonValue::object();
      J.set("label", R.benchmark_name());
      J.set("real_time_ns", R.GetAdjustedRealTime());
      J.set("cpu_time_ns", R.GetAdjustedCPUTime());
      J.set("iterations", static_cast<uint64_t>(R.iterations));
      Report.addRun(std::move(J));
    }
    ConsoleReporter::ReportRuns(Runs);
  }

private:
  bench::BenchReport &Report;
};

} // namespace

int main(int argc, char **argv) {
  // E12 owns the hardware A/B; pinning the HTM budget to zero keeps this
  // binary's gated counts identical across RTM and no-RTM machines.
  otm::stm::TxManager::config().HtmAttempts = 0;
  std::vector<char *> Args(argv, argv + argc);
  char MinTime[] = "--benchmark_min_time=0.01";
  if (bench::smokeMode())
    Args.push_back(MinTime);
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  // No latency sampling: E0 measures the barrier fast path itself, so the
  // per-transaction TSC reads that sampling adds must stay out of the loop.
  bench::BenchReport Report("e0_barrier_micro", "E0",
                            /*SampleLatencies=*/false);
  JsonCaptureReporter Reporter(Report);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  Report.write();
  benchmark::Shutdown();
  return 0;
}
