//===- bench/e8_gc_logs.cpp - E8: GC integration and log compaction -------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// E8 (paper analogue: the GC/STM integration — logs as roots, log
// compaction during collection). One long transaction repeatedly reads a
// handful of shared objects through differently-named references (so the
// compiler cannot prove the duplicates away) while allocating garbage.
// With runtime filtering disabled the read log grows with the iteration
// count; each collection triggered mid-transaction dedupes it back down to
// the number of distinct objects and reclaims the dead allocations.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "interp/Interp.h"
#include "passes/Pipeline.h"
#include "stm/Stm.h"
#include "tmir/Parser.h"
#include "tmir/Verifier.h"

#include <cstdio>
#include <string>

using namespace otm;
using namespace otm::bench;
using namespace otm::interp;
using namespace otm::passes;
using namespace otm::tmir;

namespace {

const char *Program = R"(
class P { x: i64 }

func hammer(a: P, b: P, n: i64): i64 {
  var i: i64
  var acc: i64
entry:
  atomic_begin
  storelocal i, 0
  storelocal acc, 0
  br loop
loop:
  %i = loadlocal i
  %n = loadlocal n
  %done = cmpge %i, %n
  condbr %done, exit, body
body:
  %pa = loadlocal a
  %va = getfield %pa, P.x
  %pb = loadlocal b
  %vb = getfield %pb, P.x
  %junk = newobj P
  setfield %junk, P.x, %va
  %s = add %va, %vb
  %acc = loadlocal acc
  %acc2 = add %acc, %s
  storelocal acc, %acc2
  %i2 = add %i, 1
  storelocal i, %i2
  br loop
exit:
  atomic_end
  %r = loadlocal acc
  ret %r
}
)";

struct Sample {
  long long Result;
  unsigned long long Collections, Freed, ReadDropped, UndoDropped;
  unsigned long long Live;
};

Sample runOnce(bool Filters, uint64_t GcEvery, const OptConfig &Config,
               long long Iterations) {
  Module M = parseModuleOrDie(Program);
  verifyModuleOrDie(M);
  lowerAndOptimize(M, Config);

  stm::TxConfig Saved = stm::Stm::config();
  stm::Stm::config().FilterReads = Filters;
  stm::Stm::config().FilterUndo = Filters;

  Interpreter::Options O;
  O.Mode = Interpreter::TxMode::ObjStm;
  O.GcEveryNAllocs = GcEvery;
  Interpreter I(M, O);
  HeapObject *A = I.makeObject("P");
  HeapObject *B = I.makeObject("P");
  A->Slots[0].store(1);
  B->Slots[0].store(2);
  Interpreter::RunResult R = I.run(
      "hammer", {HeapObject::toBits(A), HeapObject::toBits(B), Iterations});
  stm::Stm::config() = Saved;
  if (R.Trapped) {
    std::fprintf(stderr, "e8: trap: %s\n", R.Error.c_str());
    std::exit(1);
  }
  Sample S;
  S.Result = R.Value;
  S.Collections = I.heap().stats().Collections;
  S.Freed = I.heap().stats().ObjectsFreed;
  S.ReadDropped = I.heap().stats().ReadEntriesDropped;
  S.UndoDropped = I.heap().stats().UndoEntriesDropped;
  S.Live = I.heap().liveCount();
  return S;
}

void printSample(const char *Label, const Sample &S, BenchReport &Report) {
  std::printf("%-34s %6llu %9llu %10llu %10llu %6llu\n", Label,
              S.Collections, S.Freed, S.ReadDropped, S.UndoDropped, S.Live);
  obs::JsonValue Run = obs::JsonValue::object();
  Run.set("label", Label);
  Run.set("collections", uint64_t(S.Collections));
  Run.set("objects_freed", uint64_t(S.Freed));
  Run.set("read_entries_dropped", uint64_t(S.ReadDropped));
  Run.set("undo_entries_dropped", uint64_t(S.UndoDropped));
  Run.set("live_objects", uint64_t(S.Live));
  Run.set("result", int64_t(S.Result));
  Report.addRun(std::move(Run));
}

} // namespace

int main() {
  // E12 owns the hardware A/B; pinning the HTM budget to zero keeps this
  // binary's gated counts identical across RTM and no-RTM machines.
  otm::stm::TxManager::config().HtmAttempts = 0;
  BenchReport Report("e8_gc_logs", "E8");
  const long long Iterations = static_cast<long long>(scaled(20000, 1000));
  std::printf("E8: GC log compaction during one long transaction "
              "(%lld iterations, GC every 256 allocs)\n", Iterations);
  std::printf("---------------------------------------------------------------"
              "---------------\n");
  std::printf("%-34s %6s %9s %10s %10s %6s\n", "config", "GCs", "freed",
              "rd-dropped", "un-dropped", "live");
  std::printf("---------------------------------------------------------------"
              "---------------\n");
  Sample NoFilterGc =
      runOnce(false, 256, OptConfig::none(), Iterations);
  printSample("naive, no filter, GC on", NoFilterGc, Report);
  Sample FilterGc = runOnce(true, 256, OptConfig::none(), Iterations);
  printSample("naive, filter on, GC on", FilterGc, Report);
  Sample OptGc = runOnce(true, 256, OptConfig::all(), Iterations);
  printSample("optimized, filter on, GC on", OptGc, Report);
  Sample NoGc = runOnce(false, 0, OptConfig::none(), Iterations);
  printSample("naive, no filter, GC off", NoGc, Report);
  std::printf("---------------------------------------------------------------"
              "---------------\n");

  if (NoFilterGc.Result != FilterGc.Result ||
      NoFilterGc.Result != OptGc.Result || NoFilterGc.Result != NoGc.Result) {
    std::fprintf(stderr, "e8: configs disagree!\n");
    return 1;
  }
  std::printf("result %lld in every configuration\n", NoFilterGc.Result);
  std::printf("expected shape: without filtering the GC drops huge numbers "
              "of duplicate read entries; with filtering (or optimized "
              "barriers) there is almost nothing left to compact; garbage "
              "allocated inside the live transaction is reclaimed while it "
              "runs\n");
  Report.write();
  return 0;
}
