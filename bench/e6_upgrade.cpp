//===- bench/e6_upgrade.cpp - E6: read-to-update upgrade effect -----------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// E6 (paper analogue: the read-to-update upgrade optimization). The bank
// transfer reads an account balance and then certainly writes it back —
// the canonical read-then-update pattern. With the upgrade pass the read
// open is strengthened to an update open and the later update open is
// removed: half the dynamic opens and no read-set entry to validate. For
// contrast, the bst-insert program is also shown: its descent reads
// different registers than its attach-point writes, so the upgrade
// (correctly) finds nothing.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "bench/TmirPrograms.h"
#include "interp/Interp.h"
#include "passes/Pipeline.h"
#include "tmir/Parser.h"
#include "tmir/Verifier.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace otm;
using namespace otm::bench;
using namespace otm::interp;
using namespace otm::passes;
using namespace otm::tmir;

namespace {

const TmirProgram &programNamed(const char *Name) {
  unsigned Count = 0;
  const TmirProgram *Programs = tmirPrograms(Count);
  for (unsigned I = 0; I < Count; ++I)
    if (std::strcmp(Programs[I].Name, Name) == 0)
      return Programs[I];
  std::fprintf(stderr, "e6: program %s missing\n", Name);
  std::exit(1);
}

struct Sample {
  long long Result = 0;
  double Seconds = 0;
  unsigned long long OpenR = 0, OpenU = 0;
  unsigned long long ReadLogAppends = 0;
};

Sample runConfig(const TmirProgram &P, bool WithUpgrade) {
  Module M = parseModuleOrDie(P.Source);
  verifyModuleOrDie(M);
  OptConfig C = OptConfig::all();
  C.Upgrade = WithUpgrade;
  lowerAndOptimize(M, C);

  Interpreter::Options O;
  O.Mode = Interpreter::TxMode::ObjStm;
  Interpreter I(M, O);

  stm::Stm::resetGlobalStats();
  Sample S;
  S.Seconds = timeIt([&] {
    Interpreter::RunResult R = I.run(P.Entry, {P.Arg});
    if (R.Trapped) {
      std::fprintf(stderr, "e6: trap: %s\n", R.Error.c_str());
      std::exit(1);
    }
    S.Result = R.Value;
  });
  stm::TxManager::current().flushStats();
  stm::TxStats G = stm::Stm::globalStats();
  S.OpenR = I.counts().OpenRead.load();
  S.OpenU = I.counts().OpenUpdate.load();
  S.ReadLogAppends = G.ReadLogAppends;
  return S;
}

void runProgram(const char *Name, BenchReport &Report) {
  const TmirProgram &P = programNamed(Name);
  Sample Off = runConfig(P, false);
  Sample On = runConfig(P, true);
  struct {
    const char *Config;
    const Sample *S;
  } Rows[] = {{"upgrade-off", &Off}, {"upgrade-on", &On}};
  for (auto &R : Rows) {
    obs::JsonValue Run = obs::JsonValue::object();
    Run.set("label", std::string(Name) + "/" + R.Config);
    Run.set("seconds", R.S->Seconds);
    Run.set("open_read", uint64_t(R.S->OpenR));
    Run.set("open_update", uint64_t(R.S->OpenU));
    Run.set("read_log_appends", uint64_t(R.S->ReadLogAppends));
    Report.addRun(std::move(Run));
  }
  std::printf("%-12s upgrade off  %10.4f %12llu %12llu %12llu\n", Name,
              Off.Seconds, Off.OpenR, Off.OpenU, Off.ReadLogAppends);
  std::printf("%-12s upgrade on   %10.4f %12llu %12llu %12llu\n", Name,
              On.Seconds, On.OpenR, On.OpenU, On.ReadLogAppends);
  if (Off.Result != On.Result) {
    std::fprintf(stderr, "e6: %s: results disagree!\n", Name);
    std::exit(1);
  }
}

} // namespace

int main() {
  // E12 owns the hardware A/B; pinning the HTM budget to zero keeps this
  // binary's gated counts identical across RTM and no-RTM machines.
  otm::stm::TxManager::config().HtmAttempts = 0;
  BenchReport Report("e6_upgrade", "E6");
  std::printf("E6: read-to-update upgrade (single thread, interpreter)\n");
  printHeaderRule();
  std::printf("%-12s %-12s %10s %12s %12s %12s\n", "program", "config",
              "time(s)", "open_read", "open_update", "rd-appends");
  printHeaderRule();
  runProgram("bank", Report);
  runProgram("bst-insert", Report);
  printHeaderRule();
  std::printf("expected shape: bank halves its opens and empties its read "
              "set (reads upgraded away); bst-insert is unchanged because "
              "its reads and writes target different references\n");
  Report.write();
  return 0;
}
