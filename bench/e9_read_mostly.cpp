//===- bench/e9_read_mostly.cpp - E9: snapshot readers vs validate --------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// E9 (MVCC A/B): read-mostly workloads over a Zipf-skewed object pool,
// comparing the two read-only commit disciplines side by side:
//
//   - mode=validate: read-only transactions run through the ordinary
//     optimistic path (invisible reads enlisted in the read log, full
//     validate scan at commit, aborts on conflict with writers);
//   - mode=snapshot: the same transactions run through Stm::atomicReadOnly
//     and resolve against the multi-version chains at their begin stamp —
//     no read log, no validate scan, no aborts (DESIGN.md section 3.9).
//
// The grid sweeps thread count and reader fraction. Writer transactions
// (identical in both modes) read-modify-write two objects, keeping the
// version chains churning under the readers. Reported per cell: commit
// counts split by role, snapshot-path traffic, and the mean whole-
// transaction cost per role in TSC cycles (the headline number: snapshot
// readers shed the O(read-set) validate scan).
//
// Determinism: role choice and key choice come from fixed per-thread
// seeds, so commits/reader_tx/writer_tx/snapshot_commits are exact run to
// run. Abort, refresh, and wait counts depend on interleaving and are
// emitted under nd_-prefixed keys, which the bench_diff count gate skips.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "obs/Tsc.h"
#include "stm/Stm.h"
#include "support/Random.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace otm;
using namespace otm::bench;
using namespace otm::stm;

namespace {

const int TxPerThread = static_cast<int>(scaled(20000, 400));
constexpr unsigned PoolSize = 4096;
constexpr unsigned ReadsPerTx = 16;

struct Item : TxObject {
  Field<int64_t> Value;
};

struct CellResult {
  uint64_t ReaderTx = 0;
  uint64_t WriterTx = 0;
  uint64_t ReaderCycles = 0;
  uint64_t WriterCycles = 0;
  int64_t ReadSink = 0; ///< keeps the reader loads observable
};

/// One grid cell: \p NumThreads threads, \p ReaderPercent of transactions
/// read-only, run in snapshot mode when \p Snapshot (else the validate
/// path). The object pool is rebuilt per cell so chain depths start equal.
void runCell(unsigned NumThreads, unsigned ReaderPercent, bool Snapshot,
             BenchReport &Report) {
  std::vector<std::unique_ptr<Item>> Pool;
  Pool.reserve(PoolSize);
  for (unsigned I = 0; I < PoolSize; ++I)
    Pool.push_back(std::make_unique<Item>());

  std::vector<CellResult> PerThread(NumThreads);
  StatsCapture Capture;
  double Seconds = runThreads(NumThreads, [&](unsigned T) {
    // Separate generators for role and keys: the role stream (and with it
    // reader_tx/writer_tx) stays deterministic regardless of how many key
    // draws each role makes.
    Xoshiro256 Role(9100 + T);
    KeyDist Keys = KeyDist::zipf(PoolSize, 9200 + T);
    CellResult &R = PerThread[T];
    int64_t Sink = 0;
    for (int I = 0; I < TxPerThread; ++I) {
      bool Reader = Role.nextPercent(ReaderPercent);
      uint64_t T0 = obs::readTsc();
      if (Reader) {
        auto Body = [&](TxManager &Tx) {
          int64_t Sum = 0;
          for (unsigned N = 0; N < ReadsPerTx; ++N)
            Sum += Tx.read(Pool[Keys.next()].get(), &Item::Value);
          Sink += Sum;
        };
        if (Snapshot)
          Stm::atomicReadOnly(Body);
        else
          Stm::atomic(Body);
        R.ReaderCycles += obs::readTsc() - T0;
        ++R.ReaderTx;
      } else {
        Item *A = Pool[Keys.next()].get();
        Item *B = Pool[Keys.next()].get();
        Stm::atomic([&](TxManager &Tx) {
          Tx.openForUpdate(A);
          Tx.openForUpdate(B);
          int64_t V = A->Value.load();
          Tx.logUndo(&A->Value);
          A->Value.store(V + 1);
          Tx.logUndo(&B->Value);
          B->Value.store(B->Value.load() + 1);
        });
        R.WriterCycles += obs::readTsc() - T0;
        ++R.WriterTx;
      }
    }
    R.ReadSink = Sink;
  });

  stm::TxStats S = Capture.finish();
  CellResult Total;
  for (const CellResult &R : PerThread) {
    Total.ReaderTx += R.ReaderTx;
    Total.WriterTx += R.WriterTx;
    Total.ReaderCycles += R.ReaderCycles;
    Total.WriterCycles += R.WriterCycles;
    Total.ReadSink += R.ReadSink;
  }
  const uint64_t TotalTx = uint64_t(NumThreads) * uint64_t(TxPerThread);
  double Ktps = double(TotalTx) / Seconds / 1e3;
  double ReaderCost =
      Total.ReaderTx ? double(Total.ReaderCycles) / double(Total.ReaderTx) : 0;
  double WriterCost =
      Total.WriterTx ? double(Total.WriterCycles) / double(Total.WriterTx) : 0;
  const char *Mode = Snapshot ? "snapshot" : "validate";
  std::printf("%-9s %7u %8u%% %10.1f %11llu %11llu %12llu %9llu %12.0f\n",
              Mode, NumThreads, ReaderPercent, Ktps,
              static_cast<unsigned long long>(Total.ReaderTx),
              static_cast<unsigned long long>(Total.WriterTx),
              static_cast<unsigned long long>(S.SnapshotCommits),
              static_cast<unsigned long long>(S.Aborts), ReaderCost);

  obs::JsonValue Run = obs::JsonValue::object();
  Run.set("label", "mode=" + std::string(Mode) +
                       "/threads=" + std::to_string(NumThreads) +
                       "/readers=" + std::to_string(ReaderPercent) + "%");
  Run.set("mode", Mode);
  Run.set("threads", uint64_t(NumThreads));
  Run.set("reader_percent", uint64_t(ReaderPercent));
  // Deterministic counts (fixed seeds; retried attempts commit exactly once).
  Run.set("commits", S.Commits);
  Run.set("reader_tx", Total.ReaderTx);
  Run.set("writer_tx", Total.WriterTx);
  Run.set("snapshot_commits", S.SnapshotCommits);
  // Timing (skipped by the count gate via the _cycles/_per_sec suffixes).
  Run.set("ktx_per_sec", Ktps);
  Run.set("reader_tx_cycles", ReaderCost);
  Run.set("writer_tx_cycles", WriterCost);
  // Interleaving-dependent counts (nd_ prefix: skipped by the count gate).
  Run.set("nd_read_sink", static_cast<uint64_t>(Total.ReadSink));
  Run.set("nd_aborts", S.Aborts);
  Run.set("nd_aborts_on_conflict", S.AbortsOnConflict);
  Run.set("nd_aborts_on_validation", S.AbortsOnValidation);
  Run.set("nd_snapshot_refreshes", S.SnapshotRefreshes);
  Run.set("nd_snapshot_waits", S.SnapshotWaits);
  Run.set("nd_snapshot_reads_from_chain", S.SnapshotReadsFromChain);
  Report.addRun(std::move(Run));
}

} // namespace

int main() {
  // E12 owns the hardware A/B; pinning the HTM budget to zero keeps this
  // binary's gated counts identical across RTM and no-RTM machines.
  otm::stm::TxManager::config().HtmAttempts = 0;
  BenchReport Report("e9_read_mostly", "E9");
  std::printf("E9: read-mostly Zipf workload, snapshot vs validate read-only "
              "commits (pool=%u, %u reads/tx, skew=%.2f)\n",
              PoolSize, ReadsPerTx, BenchZipfSkew);
  if (!TxManager::mvccEnabled())
    std::printf("NOTE: built with OTM_MVCC=0 — mode=snapshot falls back to "
                "the validate path (snapshot_commits stays 0)\n");
  printHeaderRule();
  std::printf("%-9s %7s %9s %10s %11s %11s %12s %9s %12s\n", "mode", "threads",
              "readers", "Ktx/s", "reader_tx", "writer_tx", "snap_commits",
              "aborts", "rd_cyc/tx");
  printHeaderRule();
  for (unsigned Threads : {1u, 2u, 4u, 8u})
    for (unsigned ReaderPercent : {50u, 90u, 99u})
      for (bool Snapshot : {false, true})
        runCell(Threads, ReaderPercent, Snapshot, Report);
  printHeaderRule();
  std::printf("expected shape: snapshot rows commit every reader with zero "
              "aborts (snap_commits == reader_tx) and their per-transaction "
              "cost stays flat as threads rise, while validate readers pay "
              "the O(read-set) commit scan plus conflict aborts against the "
              "writers.\n");
  Report.write();
  return 0;
}
