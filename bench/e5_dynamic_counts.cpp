//===- bench/e5_dynamic_counts.cpp - E5: dynamic barriers & filtering -----===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// E5 (paper analogue: dynamic STM operation counts and the effect of
// runtime log filtering). Each TMIR program runs on the interpreter in
// three configurations:
//
//   naive lowering                — per-access opens, filters ON
//   naive lowering, filters OFF   — shows how much the runtime filter hides
//   optimized lowering            — the compiler removed the duplicates
//
// Reported per run: dynamic opens executed, read-log appends vs filtered,
// undo-log appends vs filtered. All runs must produce the same result.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "bench/TmirPrograms.h"
#include "interp/Interp.h"
#include "passes/Pipeline.h"
#include "stm/Stm.h"
#include "tmir/Parser.h"
#include "tmir/Verifier.h"

#include <cstdio>
#include <string>

using namespace otm;
using namespace otm::bench;
using namespace otm::interp;
using namespace otm::passes;
using namespace otm::tmir;

namespace {

struct RunSample {
  long long Result = 0;
  unsigned long long Opens = 0;
  unsigned long long ReadAppends = 0;
  unsigned long long ReadsFiltered = 0;
  unsigned long long UndoAppends = 0;
  unsigned long long UndosFiltered = 0;
  /// Full interpreter dynamic-counter snapshot (deterministic; diffed by
  /// scripts/bench_diff.py against bench/baselines).
  DynCounts::Delta Dyn;
};

RunSample runOne(const TmirProgram &P, const OptConfig &Config,
                 bool Filters) {
  Module M = parseModuleOrDie(P.Source);
  verifyModuleOrDie(M);
  lowerAndOptimize(M, Config);

  stm::TxConfig Saved = stm::Stm::config();
  stm::Stm::config().FilterReads = Filters;
  stm::Stm::config().FilterUndo = Filters;
  stm::Stm::resetGlobalStats();

  Interpreter::Options O;
  O.Mode = Interpreter::TxMode::ObjStm;
  Interpreter I(M, O);
  Interpreter::RunResult R = I.run(P.Entry, {P.Arg});
  stm::TxManager::current().flushStats();
  stm::TxStats S = stm::Stm::globalStats();
  stm::Stm::config() = Saved;

  if (R.Trapped) {
    std::fprintf(stderr, "e5: %s trapped: %s\n", P.Name, R.Error.c_str());
    std::exit(1);
  }
  RunSample Sample;
  Sample.Result = R.Value;
  Sample.Opens = I.counts().OpenRead.load() + I.counts().OpenUpdate.load();
  DynCounts &C = I.counts();
  Sample.Dyn = {C.Instrs.load(),      C.OpenRead.load(),
                C.OpenUpdate.load(),  C.UndoField.load(),
                C.UndoElem.load(),    C.FieldReads.load(),
                C.FieldWrites.load(), C.Calls.load(),
                C.TxStarted.load(),   C.TxCommitted.load(),
                C.TxRetried.load()};
  Sample.ReadAppends = S.ReadLogAppends;
  Sample.ReadsFiltered = S.ReadsFiltered;
  Sample.UndoAppends = S.UndoLogAppends;
  Sample.UndosFiltered = S.UndosFiltered;
  return Sample;
}

void printSample(const char *Config, const RunSample &S) {
  std::printf("  %-18s %12llu %10llu %10llu %10llu %10llu\n", Config,
              S.Opens, S.ReadAppends, S.ReadsFiltered, S.UndoAppends,
              S.UndosFiltered);
}

} // namespace

int main() {
  // E12 owns the hardware A/B; pinning the HTM budget to zero keeps this
  // binary's gated counts identical across RTM and no-RTM machines.
  otm::stm::TxManager::config().HtmAttempts = 0;
  BenchReport Report("e5_dynamic_counts", "E5");
  unsigned NumPrograms = 0;
  const TmirProgram *Programs = tmirPrograms(NumPrograms);

  std::printf("E5: dynamic barrier execution and runtime filtering\n");
  std::printf("---------------------------------------------------------------"
              "---------------\n");
  std::printf("  %-18s %12s %10s %10s %10s %10s\n", "config", "opens",
              "rd-append", "rd-filter", "un-append", "un-filter");

  for (unsigned P = 0; P < NumPrograms; ++P) {
    std::printf("%s (arg %lld):\n", Programs[P].Name, Programs[P].Arg);
    RunSample Naive = runOne(Programs[P], OptConfig::none(), true);
    RunSample NoFilter = runOne(Programs[P], OptConfig::none(), false);
    RunSample Opt = runOne(Programs[P], OptConfig::all(), true);
    printSample("naive", Naive);
    printSample("naive, no filter", NoFilter);
    printSample("optimized", Opt);
    struct {
      const char *Config;
      const RunSample *S;
    } Samples[] = {{"naive", &Naive}, {"naive-no-filter", &NoFilter},
                   {"optimized", &Opt}};
    for (auto &Row : Samples) {
      obs::JsonValue Run = obs::JsonValue::object();
      Run.set("label",
              std::string(Programs[P].Name) + "/" + Row.Config);
      Run.set("opens", uint64_t(Row.S->Opens));
      Run.set("read_appends", uint64_t(Row.S->ReadAppends));
      Run.set("reads_filtered", uint64_t(Row.S->ReadsFiltered));
      Run.set("undo_appends", uint64_t(Row.S->UndoAppends));
      Run.set("undos_filtered", uint64_t(Row.S->UndosFiltered));
      Run.set("result", int64_t(Row.S->Result));
      const DynCounts::Delta &Dyn = Row.S->Dyn;
      Run.set("instrs", Dyn.Instrs);
      Run.set("open_read", Dyn.OpenRead);
      Run.set("open_update", Dyn.OpenUpdate);
      Run.set("undo_field", Dyn.UndoField);
      Run.set("undo_elem", Dyn.UndoElem);
      Run.set("field_reads", Dyn.FieldReads);
      Run.set("field_writes", Dyn.FieldWrites);
      Run.set("calls", Dyn.Calls);
      Run.set("tx_started", Dyn.TxStarted);
      Run.set("tx_committed", Dyn.TxCommitted);
      Run.set("tx_retried", Dyn.TxRetried);
      Report.addRun(std::move(Run));
    }
    if (Naive.Result != Opt.Result || Naive.Result != NoFilter.Result) {
      std::fprintf(stderr, "e5: %s: configs disagree (%lld vs %lld)\n",
                   Programs[P].Name, Naive.Result, Opt.Result);
      return 1;
    }
    if (Programs[P].Expected >= 0 && Naive.Result != Programs[P].Expected) {
      std::fprintf(stderr, "e5: %s: wrong result %lld (expected %lld)\n",
                   Programs[P].Name, Naive.Result, Programs[P].Expected);
      return 1;
    }
    std::printf("  result %lld — all configs agree\n\n",
                Naive.Result);
  }
  std::printf("expected shape: optimized executes fewest opens; without "
              "filtering the naive log appends balloon (what the paper's "
              "runtime filtering prevents)\n");
  Report.write();
  return 0;
}
