//===- bench/e10_boosting.cpp - E10: semantic vs structural conflicts -----===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// E10 (boosting A/B): write-heavy Zipf-skewed point operations on the
// transactional HashMap and SkipList, comparing the two conflict-detection
// disciplines side by side:
//
//   - mode=obj-opt: the optimized object STM (ObjStmOptPolicy) — conflicts
//     are structural: two transactions collide whenever their footprints
//     share a bucket head, a chain node, or a skip-list tower, even when
//     they touch different keys;
//   - mode=boosted: transactional boosting (BoostedPolicy, DESIGN.md
//     section 3.10) — conflicts are semantic: abstract (container, key)
//     locks make transactions collide only on the same key.
//
// The skip list is the worst structural false-conflict case (every descent
// reads the high towers near the head), the hash map the mildest (one
// bucket chain per op); together they bracket the win. The grid sweeps
// thread count per structure and mode. The headline: at 8 threads the
// boosted rows collapse the abort rate (false conflicts vanish) at equal
// or better throughput.
//
// Determinism: op kind and key come from fixed per-thread seeds, and every
// operation is one transaction that commits exactly once (retries are
// absorbed), so ops/commits are exact run to run. Abort counts, boost
// lock waits, and the final container size depend on interleaving and are
// emitted under nd_-prefixed keys, which the bench_diff count gate skips.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "containers/HashMap.h"
#include "containers/SkipList.h"
#include "stm/Stm.h"
#include "support/Random.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace otm;
using namespace otm::bench;
using namespace otm::containers;

namespace {

const int OpsPerThread = static_cast<int>(scaled(20000, 400));
constexpr unsigned KeySpace = 4096;
constexpr unsigned InsertPercent = 40; // then 40% erase, 20% lookup

/// The containers close over their own op signatures; the driver only needs
/// the three point operations.
struct Ops {
  std::function<void(int64_t, int64_t)> Insert;
  std::function<void(int64_t)> Erase;
  std::function<bool(int64_t, int64_t &)> Lookup;
  std::function<std::size_t()> Size;
  std::function<bool()> Check;
};

template <typename ContainerType> Ops opsFor(ContainerType &C) {
  return {[&C](int64_t K, int64_t V) { C.insert(K, V); },
          [&C](int64_t K) { C.erase(K); },
          [&C](int64_t K, int64_t &V) { return C.lookup(K, V); },
          [&C] { return C.sizeSlow(); },
          [&C] { return C.checkInvariantsSlow(); }};
}

// HashMap has no checkInvariantsSlow; placement is its invariant.
template <typename Policy> Ops opsFor(HashMap<Policy> &C) {
  return {[&C](int64_t K, int64_t V) { C.insert(K, V); },
          [&C](int64_t K) { C.erase(K); },
          [&C](int64_t K, int64_t &V) { return C.lookup(K, V); },
          [&C] { return C.sizeSlow(); },
          [&C] { return C.checkPlacementSlow(); }};
}

/// Abort-rate bookkeeping for the end-of-run headline comparison.
struct Headline {
  double AbortsPerKCommit = 0;
  double Ktps = 0;
};

/// One grid cell: \p NumThreads threads hammering \p Container with the
/// write-heavy Zipf mix. The container arrives prepopulated (half the
/// keyspace) and its construction traffic is outside the stats capture.
Headline runCell(const char *Struct, const char *Mode, unsigned NumThreads,
                 const Ops &C, BenchReport &Report) {
  std::vector<int64_t> Sink(NumThreads, 0);
  StatsCapture Capture;
  double Seconds = runThreads(NumThreads, [&](unsigned T) {
    // Separate generators for op kind and keys: the kind stream stays
    // deterministic regardless of how many key draws each op makes.
    Xoshiro256 Kind(10100 + T);
    KeyDist Keys = KeyDist::zipf(KeySpace, 10200 + T);
    int64_t Local = 0;
    for (int I = 0; I < OpsPerThread; ++I) {
      auto Key = static_cast<int64_t>(Keys.next());
      unsigned Roll = static_cast<unsigned>(Kind.nextBelow(100));
      if (Roll < InsertPercent) {
        C.Insert(Key, Key * 2 + 1);
      } else if (Roll < 2 * InsertPercent) {
        C.Erase(Key);
      } else {
        int64_t V = 0;
        if (C.Lookup(Key, V))
          Local += V;
      }
    }
    Sink[T] = Local;
  });

  stm::TxStats S = Capture.finish();
  const uint64_t TotalOps = uint64_t(NumThreads) * uint64_t(OpsPerThread);
  double Ktps = double(TotalOps) / Seconds / 1e3;
  double AbortsPerK = S.Commits ? 1e3 * double(S.Aborts) / double(S.Commits) : 0;
  std::printf("%-9s %-8s %7u %10.1f %11llu %9llu %10.1f %11llu %10llu\n",
              Struct, Mode, NumThreads, Ktps,
              static_cast<unsigned long long>(S.Commits),
              static_cast<unsigned long long>(S.Aborts), AbortsPerK,
              static_cast<unsigned long long>(S.BoostLockAcquires),
              static_cast<unsigned long long>(S.BoostLockWaits));
  if (!C.Check())
    std::printf("INVARIANT FAILURE: %s/%s at %u threads\n", Struct, Mode,
                NumThreads);

  obs::JsonValue Run = obs::JsonValue::object();
  Run.set("label", std::string(Struct) + "/" + Mode +
                       "/threads=" + std::to_string(NumThreads));
  Run.set("structure", Struct);
  Run.set("mode", Mode);
  Run.set("threads", uint64_t(NumThreads));
  // Deterministic counts (fixed seeds; retried attempts commit exactly once).
  Run.set("ops", TotalOps);
  Run.set("commits", S.Commits);
  // Timing (skipped by the count gate via the _per_sec/_percent suffixes).
  Run.set("ktx_per_sec", Ktps);
  Run.set("abort_percent", S.Commits ? 100.0 * double(S.Aborts) /
                                           double(S.Commits + S.Aborts)
                                     : 0.0);
  // Interleaving-dependent counts (nd_ prefix: skipped by the count gate).
  int64_t SinkTotal = 0;
  for (int64_t V : Sink)
    SinkTotal += V;
  Run.set("nd_lookup_sink", static_cast<uint64_t>(SinkTotal));
  Run.set("nd_aborts", S.Aborts);
  Run.set("nd_aborts_on_conflict", S.AbortsOnConflict);
  Run.set("nd_aborts_on_validation", S.AbortsOnValidation);
  Run.set("nd_boost_lock_acquires", S.BoostLockAcquires);
  Run.set("nd_boost_lock_waits", S.BoostLockWaits);
  Run.set("nd_boost_undo_ops", S.BoostUndoOps);
  Run.set("nd_boost_structural_fallbacks", S.BoostStructuralFallbacks);
  Run.set("nd_size", static_cast<uint64_t>(C.Size()));
  Report.addRun(std::move(Run));
  return {AbortsPerK, Ktps};
}

/// Builds a fresh, half-populated container and runs one cell on it.
template <typename ContainerType, typename... CtorArgs>
Headline runStruct(const char *Struct, const char *Mode, unsigned NumThreads,
                   BenchReport &Report, CtorArgs &&...Args) {
  auto Container =
      std::make_unique<ContainerType>(std::forward<CtorArgs>(Args)...);
  for (unsigned K = 0; K < KeySpace; K += 2)
    Container->insert(static_cast<int64_t>(K), static_cast<int64_t>(K) * 2 + 1);
  // Flush the prepopulation transactions out of this thread's local stats
  // block now, so the cell's StatsCapture reset discards them (otherwise
  // the capture's finish() would sweep them into the cell's commit count).
  stm::TxManager::current().flushStats();
  Ops C = opsFor(*Container);
  return runCell(Struct, Mode, NumThreads, C, Report);
}

} // namespace

int main() {
  // E12 owns the hardware A/B; pinning the HTM budget to zero keeps this
  // binary's gated counts identical across RTM and no-RTM machines.
  otm::stm::TxManager::config().HtmAttempts = 0;
  BenchReport Report("e10_boosting", "E10");
  std::printf("E10: write-heavy Zipf point ops (keyspace=%u, skew=%.2f, "
              "%u%%/%u%%/%u%% insert/erase/lookup), boosted vs obj-opt\n",
              KeySpace, BenchZipfSkew, InsertPercent, InsertPercent,
              100 - 2 * InsertPercent);
  if (!stm::TxManager::boostEnabled())
    std::printf("NOTE: built with OTM_BOOST=0 — mode=boosted falls back to "
                "the optimized object-STM path (abort rates match obj-opt)\n");
  printHeaderRule();
  std::printf("%-9s %-8s %7s %10s %11s %9s %10s %11s %10s\n", "struct", "mode",
              "threads", "Kops/s", "commits", "aborts", "ab/Kcommit",
              "boost_acq", "boost_wait");
  printHeaderRule();
  Headline AtMax[2][2]; // [struct][mode], at the highest thread count
  const unsigned MaxThreads = 8;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    Headline H;
    H = runStruct<HashMap<ObjStmOptPolicy>>("hashmap", "obj-opt", Threads,
                                            Report, std::size_t(1024));
    if (Threads == MaxThreads)
      AtMax[0][0] = H;
    H = runStruct<HashMap<BoostedPolicy>>("hashmap", "boosted", Threads,
                                          Report, std::size_t(1024));
    if (Threads == MaxThreads)
      AtMax[0][1] = H;
    H = runStruct<SkipList<ObjStmOptPolicy>>("skiplist", "obj-opt", Threads,
                                             Report);
    if (Threads == MaxThreads)
      AtMax[1][0] = H;
    H = runStruct<SkipList<BoostedPolicy>>("skiplist", "boosted", Threads,
                                           Report);
    if (Threads == MaxThreads)
      AtMax[1][1] = H;
  }
  printHeaderRule();
  const char *Structs[2] = {"hashmap", "skiplist"};
  for (int I = 0; I < 2; ++I) {
    double Reduction = AtMax[I][1].AbortsPerKCommit > 0
                           ? AtMax[I][0].AbortsPerKCommit /
                                 AtMax[I][1].AbortsPerKCommit
                           : 0;
    std::printf("headline %-9s @%u threads: abort rate %.1f -> %.1f per "
                "Kcommit (%.0fx lower), throughput %.0f -> %.0f Kops/s\n",
                Structs[I], MaxThreads, AtMax[I][0].AbortsPerKCommit,
                AtMax[I][1].AbortsPerKCommit, Reduction, AtMax[I][0].Ktps,
                AtMax[I][1].Ktps);
  }
  std::printf("expected shape: obj-opt abort rates climb with threads (bucket "
              "chains and skip towers make disjoint keys collide), boosted "
              "rows conflict only on true key overlap — the Zipf head — so "
              "their abort rate stays near zero and throughput holds.\n");
  Report.write();
  return 0;
}
