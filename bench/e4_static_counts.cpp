//===- bench/e4_static_counts.cpp - E4: static barrier counts -------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// E4 (paper analogue: the table of static STM operations removed by each
// compiler optimization). Every TMIR benchmark program is lowered naively
// and then re-optimized under cumulatively enabled optimizations; the
// table reports the static barrier count after each configuration and the
// total reduction.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "bench/TmirPrograms.h"
#include "passes/Pipeline.h"
#include "tmir/Parser.h"
#include "tmir/Verifier.h"

#include <cstdio>
#include <string>

using namespace otm;
using namespace otm::bench;
using namespace otm::passes;
using namespace otm::tmir;

namespace {

struct ConfigStep {
  const char *Name;
  OptConfig Config;
};

unsigned barriersUnder(const char *Source, const OptConfig &Config) {
  Module M = parseModuleOrDie(Source);
  verifyModuleOrDie(M);
  lowerAndOptimize(M, Config);
  return countBarriers(M).total();
}

} // namespace

int main() {
  // E12 owns the hardware A/B; pinning the HTM budget to zero keeps this
  // binary's gated counts identical across RTM and no-RTM machines.
  otm::stm::TxManager::config().HtmAttempts = 0;
  otm::bench::BenchReport Report("e4_static_counts", "E4");
  ConfigStep Steps[] = {
      {"naive", OptConfig::none()},
      {"+inline", [] {
         OptConfig C = OptConfig::none();
         C.Inline = C.SimplifyCfg = true;
         return C;
       }()},
      {"+cse", [] {
         OptConfig C = OptConfig::none();
         C.Inline = C.SimplifyCfg = true;
         C.LocalCse = true;
         return C;
       }()},
      {"+open-elim", [] {
         OptConfig C = OptConfig::none();
         C.Inline = C.SimplifyCfg = true;
         C.LocalCse = C.OpenElim = true;
         return C;
       }()},
      {"+upgrade", [] {
         OptConfig C = OptConfig::none();
         C.Inline = C.SimplifyCfg = true;
         C.LocalCse = C.OpenElim = C.Upgrade = true;
         return C;
       }()},
      {"+alloc", [] {
         OptConfig C = OptConfig::none();
         C.Inline = C.SimplifyCfg = true;
         C.LocalCse = C.OpenElim = C.Upgrade = C.AllocElision = true;
         return C;
       }()},
      {"+licm", [] {
         OptConfig C = OptConfig::none();
         C.Inline = C.SimplifyCfg = true;
         C.LocalCse = C.OpenElim = C.Upgrade = C.AllocElision = C.OpenLicm =
             true;
         return C;
       }()},
      {"+dce(all)", OptConfig::all()},
  };
  constexpr unsigned NumSteps = sizeof(Steps) / sizeof(Steps[0]);

  unsigned NumPrograms = 0;
  const TmirProgram *Programs = tmirPrograms(NumPrograms);

  std::printf("E4: static barrier count after cumulative optimizations\n");
  std::printf("---------------------------------------------------------------"
              "---------------\n");
  std::printf("%-12s", "program");
  for (const ConfigStep &S : Steps)
    std::printf(" %10s", S.Name);
  std::printf(" %10s\n", "reduction");
  std::printf("---------------------------------------------------------------"
              "---------------\n");

  for (unsigned P = 0; P < NumPrograms; ++P) {
    std::printf("%-12s", Programs[P].Name);
    long long PostInline = 0, Last = 0;
    for (unsigned S = 0; S < NumSteps; ++S) {
      unsigned N = barriersUnder(Programs[P].Source, Steps[S].Config);
      if (S == 1)
        PostInline = N; // the +inline column is the optimization baseline
      Last = N;
      std::printf(" %10u", N);
      obs::JsonValue Run = obs::JsonValue::object();
      Run.set("label",
              std::string(Programs[P].Name) + "/" + Steps[S].Name);
      Run.set("static_barriers", uint64_t(N));
      Report.addRun(std::move(Run));
    }
    // Reduction relative to the inlined program: inlining itself trades
    // static duplication for dynamic wins (E5), so it is the baseline the
    // barrier optimizations are measured against.
    std::printf(" %9.0f%%\n",
                PostInline ? 100.0 * static_cast<double>(PostInline - Last) /
                                 static_cast<double>(PostInline)
                           : 0.0);
  }
  std::printf("---------------------------------------------------------------"
              "---------------\n");
  std::printf("expected shape: steady decrease after the inline step (which "
              "may duplicate bodies statically); open-elim is the big win; "
              "alloc elision zeroes churn\n");
  Report.write();
  return 0;
}
