//===- bench/e7_contention.cpp - E7: abort behaviour under contention -----===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// E7 (paper analogue: behaviour of the optimistic/eager STM as conflicts
// rise). Four threads run read-modify-write transactions over a pool of
// objects while two knobs sweep:
//
//   - write ratio: fraction of transactions that open for update;
//   - hot-set size: objects drawn from 4 (pathological) to 4096 (disjoint).
//
// On a single-core host transactions almost never overlap naturally (a
// microsecond transaction inside a millisecond quantum), so one in ten
// transactions yields mid-flight while holding its opens — emulating the
// overlap a multiprocessor exhibits continuously. Reported: commits,
// aborts split by cause (ownership conflict at open vs validation failure
// at commit), and abort rate.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "stm/Stm.h"
#include "support/Random.h"
#include "txn/AbstractLockTable.h"

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace otm;
using namespace otm::bench;
using namespace otm::stm;

namespace {

constexpr unsigned NumThreads = 4;
const int TxPerThread = static_cast<int>(scaled(1500, 150));

struct Item : TxObject {
  Field<int64_t> Value;
};

/// One grid cell. When \p LabelPolicy the row label carries the active
/// contention manager (the CM-sweep rows); the main grid keeps the
/// pre-refactor label shape so runs stay comparable across revisions.
void runCell(unsigned WritePercent, unsigned HotSet, BenchReport &Report,
             bool LabelPolicy = false) {
  std::vector<std::unique_ptr<Item>> Pool;
  for (unsigned I = 0; I < HotSet; ++I)
    Pool.push_back(std::make_unique<Item>());

  StatsCapture Capture;
  double Seconds = runThreads(NumThreads, [&](unsigned T) {
    // Separate role and key streams (the E9/E10 pattern, via the shared
    // KeyDist): writer/yield decisions stay deterministic regardless of
    // how the key draws evolve.
    Xoshiro256 Role(8100 + T);
    KeyDist Keys = KeyDist::uniform(HotSet, 8150 + T);
    for (int I = 0; I < TxPerThread; ++I) {
      Item *A = Pool[Keys.next()].get();
      Item *B = Pool[Keys.next()].get();
      bool Writer = Role.nextPercent(WritePercent);
      Stm::atomic([&](TxManager &Tx) {
        if (Writer) {
          Tx.openForUpdate(A);
        } else {
          Tx.openForRead(A);
        }
        Tx.openForRead(B);
        // Emulate transaction overlap: occasionally yield while holding
        // the opens (every transaction yielding would serialize the whole
        // run on a single-core host).
        if (Role.nextPercent(10))
          std::this_thread::yield();
        int64_t V = A->Value.load() + B->Value.load();
        if (Writer) {
          Tx.logUndo(&A->Value);
          A->Value.store(V + 1);
        }
      });
    }
  });
  stm::TxStats S = Capture.finish();
  txn::CmStatsSnapshot Cm = txn::CmStats::instance().snapshot();
  const char *Policy = txn::policyName(Stm::config().ContentionPolicy);
  double Ktps = NumThreads * static_cast<double>(TxPerThread) / Seconds / 1e3;
  double AbortPct = S.Starts ? 100.0 * static_cast<double>(S.Aborts) /
                                   static_cast<double>(S.Starts)
                             : 0.0;
  std::printf("%-8s %7u%% %8u %10.1f %10llu %9llu %10llu %11llu %8.2f%%\n",
              Policy, WritePercent, HotSet, Ktps,
              static_cast<unsigned long long>(S.Commits),
              static_cast<unsigned long long>(S.Aborts),
              static_cast<unsigned long long>(S.AbortsOnConflict),
              static_cast<unsigned long long>(S.AbortsOnValidation),
              AbortPct);
  obs::JsonValue Run = obs::JsonValue::object();
  std::string Label = "writes=" + std::to_string(WritePercent) +
                      "%/objs=" + std::to_string(HotSet);
  if (LabelPolicy)
    Label = "cm=" + std::string(Policy) + "/" + Label;
  Run.set("label", Label);
  Run.set("cm", Policy);
  Run.set("ktx_per_sec", Ktps);
  Run.set("commits", S.Commits);
  Run.set("aborts", S.Aborts);
  Run.set("aborts_on_conflict", S.AbortsOnConflict);
  Run.set("aborts_on_validation", S.AbortsOnValidation);
  Run.set("abort_percent", AbortPct);
  // Commit-latency quantiles for THIS cell (TSC cycles, begin -> publish).
  Run.set("commit_p50_cycles", S.CommitTscCycles.percentile(50.0));
  Run.set("commit_p99_cycles", S.CommitTscCycles.percentile(99.0));
  Run.set("commit_p999_cycles", S.CommitTscCycles.percentile(99.9));
  // CM decisions for THIS cell (StatsCapture resets the aggregate per cell).
  Run.set("cm_conflict_waits", Cm.ConflictWaits);
  Run.set("cm_priority_aborts", Cm.PriorityAborts);
  Run.set("cm_fallback_entries", Cm.FallbackEntries);
  // Attribution for THIS cell: the next cell's StatsCapture resets it.
  Run.set("abort_sites", stm::abortSitesToJson(8));
  Report.addRun(std::move(Run));
}

#if OTM_BOOST
/// Boosted-mode cell: the same read-modify-write workload expressed with
/// abstract (pool, index) locks instead of structural opens (DESIGN.md
/// section 3.10). Both indices are locked semantically — exclusive to
/// commit — and the mutation happens on plain memory under a short base
/// mutex, with the inverse registered as an abort handler. Transactions
/// now conflict only when their index pairs overlap, so the abort columns
/// isolate true data conflicts from the structural machinery above.
void runBoostedCell(unsigned WritePercent, unsigned HotSet,
                    BenchReport &Report) {
  std::vector<int64_t> Pool(HotSet, 0);
  const uint64_t BoostId = txn::AbstractLockTable::nextContainerId();
  std::mutex BaseLock;

  StatsCapture Capture;
  double Seconds = runThreads(NumThreads, [&](unsigned T) {
    Xoshiro256 Role(8100 + T);
    KeyDist Keys = KeyDist::uniform(HotSet, 8150 + T);
    for (int I = 0; I < TxPerThread; ++I) {
      uint64_t A = Keys.next();
      uint64_t B = Keys.next();
      bool Writer = Role.nextPercent(WritePercent);
      Stm::atomic([&](TxManager &Tx) {
        Tx.boostAcquireKey(BoostId, A);
        if (B != A)
          Tx.boostAcquireKey(BoostId, B);
        // Same overlap emulation as the structural cells, while the
        // abstract locks (rather than opens) are held.
        if (Role.nextPercent(10))
          std::this_thread::yield();
        std::lock_guard<std::mutex> Guard(BaseLock);
        int64_t V = Pool[A] + Pool[B];
        if (Writer) {
          int64_t Old = Pool[A];
          Pool[A] = V + 1;
          Tx.onAbort([&Pool, &BaseLock, A, Old] {
            std::lock_guard<std::mutex> G(BaseLock);
            Pool[A] = Old;
          });
        }
      });
    }
  });
  stm::TxStats S = Capture.finish();
  double Ktps = NumThreads * static_cast<double>(TxPerThread) / Seconds / 1e3;
  double AbortPct = S.Starts ? 100.0 * static_cast<double>(S.Aborts) /
                                   static_cast<double>(S.Starts)
                             : 0.0;
  std::printf("%-8s %7u%% %8u %10.1f %10llu %9llu %10llu %11llu %8.2f%%\n",
              "boosted", WritePercent, HotSet, Ktps,
              static_cast<unsigned long long>(S.Commits),
              static_cast<unsigned long long>(S.Aborts),
              static_cast<unsigned long long>(S.AbortsOnConflict),
              static_cast<unsigned long long>(S.AbortsOnValidation),
              AbortPct);
  obs::JsonValue Run = obs::JsonValue::object();
  Run.set("label", "boosted/writes=" + std::to_string(WritePercent) +
                       "%/objs=" + std::to_string(HotSet));
  Run.set("mode", "boosted");
  Run.set("ktx_per_sec", Ktps);
  Run.set("commits", S.Commits);
  // Interleaving-dependent: semantic conflicts depend on which index pairs
  // actually overlap in time, so these stay off the count gate.
  Run.set("nd_aborts", S.Aborts);
  Run.set("nd_aborts_on_conflict", S.AbortsOnConflict);
  Run.set("nd_boost_lock_acquires", S.BoostLockAcquires);
  Run.set("nd_boost_lock_waits", S.BoostLockWaits);
  Run.set("nd_boost_undo_ops", S.BoostUndoOps);
  Run.set("abort_percent", AbortPct);
  Report.addRun(std::move(Run));
}
#endif // OTM_BOOST

} // namespace

int main() {
  // E12 owns the hardware A/B; pinning the HTM budget to zero keeps this
  // binary's gated counts identical across RTM and no-RTM machines.
  otm::stm::TxManager::config().HtmAttempts = 0;
  BenchReport Report("e7_contention", "E7");
  std::printf("E7: aborts vs write ratio and hot-set size (%u threads, "
              "read-modify-write transactions)\n", NumThreads);
  printHeaderRule();
  std::printf("%-8s %8s %8s %10s %10s %9s %10s %11s %9s\n", "cm", "writes",
              "objs", "Ktx/s", "commits", "aborts", "conflict", "validation",
              "abort%");
  printHeaderRule();
  // Main grid under the configured default policy (backoff unless OTM_CM
  // overrides) — labels unchanged from pre-txn-layer runs for comparability.
  for (unsigned WritePercent : {0u, 10u, 50u, 100u})
    for (unsigned HotSet : {4u, 64u, 4096u})
      runCell(WritePercent, HotSet, Report);
  // Contention-manager sweep on the two most contended cells: every policy,
  // so the JSON carries per-policy rows (cm=<policy>/writes=…/objs=…).
  printHeaderRule();
  std::printf("contention-manager sweep (contended cells)\n");
  printHeaderRule();
  txn::CmPolicy Saved = Stm::config().ContentionPolicy;
  for (txn::CmPolicy P :
       {txn::CmPolicy::Passive, txn::CmPolicy::Backoff, txn::CmPolicy::Karma,
        txn::CmPolicy::TimestampGreedy}) {
    Stm::config().ContentionPolicy = P;
    runCell(100, 4, Report, /*LabelPolicy=*/true);
    runCell(50, 64, Report, /*LabelPolicy=*/true);
  }
  Stm::config().ContentionPolicy = Saved;
  // Boosted-mode sweep: the same grid under semantic (abstract-lock)
  // conflict detection — rows labelled boosted/writes=…/objs=….
  printHeaderRule();
#if OTM_BOOST
  std::printf("boosted-mode sweep (semantic conflicts, abstract key locks)\n");
  printHeaderRule();
  for (unsigned WritePercent : {0u, 10u, 50u, 100u})
    for (unsigned HotSet : {4u, 64u, 4096u})
      runBoostedCell(WritePercent, HotSet, Report);
#else
  std::printf("boosted-mode sweep skipped: built with OTM_BOOST=0\n");
#endif
  printHeaderRule();
  std::printf("expected shape: abort rate rises with write ratio and falls "
              "with pool size; eager ownership makes open-time conflicts "
              "the dominant cause, with commit-time validation failures "
              "from racing readers. In the CM sweep, karma/greedy convert "
              "some timeout aborts into priority aborts; passive aborts "
              "earliest. Boosted rows abort only on overlapping index "
              "pairs, so their rate tracks the birthday bound of the pool "
              "size instead of the structural footprint.\n");
  Report.write();
  return 0;
}
