//===- examples/txc.cpp - The TMIR transactional compiler driver ----------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// `txc` is the opt-style driver for the transactional compiler: it parses
// a TMIR module (from a file, or a built-in demo program), lowers atomic
// blocks onto the decomposed STM interface, runs the barrier optimization
// pipeline, prints the before/after IR and the per-pass barrier table, and
// finally executes the program twice (naive vs optimized lowering) to show
// that behaviour is identical while the dynamic barrier counts drop.
//
// Usage: txc [file.tmir [entry-function]]
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "passes/Pipeline.h"
#include "tmir/Parser.h"
#include "tmir/Verifier.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace otm;
using namespace otm::interp;
using namespace otm::passes;
using namespace otm::tmir;

namespace {

// Built-in demo: transfers between two cells of a bank whose accounts live
// behind a helper function — exercising cloning, open elimination, the
// read-to-update upgrade and alloc elision all at once.
const char *DemoProgram = R"(
class Account { balance: i64 }
class Log { from: i64, to: i64, amount: i64 }

func newLog(f: i64, t: i64, a: i64): Log {
entry:
  %l = newobj Log
  %ff = loadlocal f
  setfield %l, Log.from, %ff
  %tt = loadlocal t
  setfield %l, Log.to, %tt
  %aa = loadlocal a
  setfield %l, Log.amount, %aa
  ret %l
}

func transfer(src: Account, dst: Account, amount: i64): Log {
entry:
  atomic_begin
  %s = loadlocal src
  %sb = getfield %s, Account.balance
  %a = loadlocal amount
  %sb2 = sub %sb, %a
  setfield %s, Account.balance, %sb2
  %d = loadlocal dst
  %db = getfield %d, Account.balance
  %db2 = add %db, %a
  setfield %d, Account.balance, %db2
  %l = call newLog(1, 2, %a)
  atomic_end
  ret %l
}

func run(src: Account, dst: Account, reps: i64): i64 {
  var i: i64
entry:
  storelocal i, 0
  br loop
loop:
  %i = loadlocal i
  %n = loadlocal reps
  %done = cmpge %i, %n
  condbr %done, exit, body
body:
  %s = loadlocal src
  %d = loadlocal dst
  %l = call transfer(%s, %d, 5)
  %i2 = add %i, 1
  storelocal i, %i2
  br loop
exit:
  %s2 = loadlocal src
  %r = getfield %s2, Account.balance
  ret %r
}
)";

void printReportTable(const std::vector<PassReport> &Reports) {
  std::printf("%-16s %10s %12s %10s %10s %8s\n", "pass", "open_read",
              "open_update", "undo_fld", "undo_elem", "total");
  for (const PassReport &R : Reports)
    std::printf("%-16s %10u %12u %10u %10u %8u\n", R.PassName.c_str(),
                R.After.OpenRead, R.After.OpenUpdate, R.After.UndoField,
                R.After.UndoElem, R.After.total());
}

int64_t runDemo(Module &M, const char *Label) {
  Interpreter::Options O;
  O.Mode = Interpreter::TxMode::ObjStm;
  Interpreter I(M, O);
  HeapObject *Src = I.makeObject("Account");
  HeapObject *Dst = I.makeObject("Account");
  Src->Slots[0].store(10000);
  Interpreter::RunResult R = I.run(
      "run", {HeapObject::toBits(Src), HeapObject::toBits(Dst), 1000});
  if (R.Trapped) {
    std::printf("%s: TRAP: %s\n", Label, R.Error.c_str());
    return -1;
  }
  std::printf("%s: result=%lld, dynamic opens=%llu, undo logs=%llu, "
              "tx committed=%llu\n",
              Label, static_cast<long long>(R.Value),
              static_cast<unsigned long long>(I.counts().OpenRead.load() +
                                              I.counts().OpenUpdate.load()),
              static_cast<unsigned long long>(I.counts().UndoField.load() +
                                              I.counts().UndoElem.load()),
              static_cast<unsigned long long>(I.counts().TxCommitted.load()));
  return R.Value;
}

} // namespace

int main(int argc, char **argv) {
  std::string Source = DemoProgram;
  std::string Entry;
  if (argc > 1) {
    std::ifstream In(argv[1]);
    if (!In) {
      std::fprintf(stderr, "txc: cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
    if (argc > 2)
      Entry = argv[2];
  }

  Module M;
  std::string Error;
  if (!parseModule(Source, M, Error)) {
    std::fprintf(stderr, "txc: parse error: %s\n", Error.c_str());
    return 1;
  }
  if (!verifyModule(M, Error)) {
    std::fprintf(stderr, "txc: verifier error: %s\n", Error.c_str());
    return 1;
  }

  std::printf("=== input module ===\n%s\n", printModule(M).c_str());

  std::vector<PassReport> Reports = lowerAndOptimize(M, OptConfig::all());
  std::printf("=== optimized module ===\n%s\n", printModule(M).c_str());
  std::printf("=== static barrier counts after each pass ===\n");
  printReportTable(Reports);

  if (!Entry.empty()) {
    // File mode with explicit entry: just run it (no arguments).
    Interpreter::Options O;
    O.Mode = Interpreter::TxMode::ObjStm;
    O.CapturePrints = false; // let the program's prints reach stdout
    Interpreter I(M, O);
    Interpreter::RunResult R = I.run(Entry, {});
    if (R.Trapped) {
      std::fprintf(stderr, "txc: trap: %s\n", R.Error.c_str());
      return 1;
    }
    std::printf("\n%s() = %lld\n", Entry.c_str(),
                static_cast<long long>(R.Value));
    return 0;
  }

  // Demo mode: run naive vs optimized and compare dynamic behaviour.
  std::printf("\n=== executing (1000 transfers of 5 from a 10000 "
              "balance) ===\n");
  Module Naive = parseModuleOrDie(DemoProgram);
  lowerAndOptimize(Naive, OptConfig::none());
  int64_t A = runDemo(Naive, "naive    ");
  int64_t B = runDemo(M, "optimized");
  if (A != B) {
    std::fprintf(stderr, "txc: naive and optimized disagree!\n");
    return 1;
  }
  return 0;
}
