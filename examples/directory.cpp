//===- examples/directory.cpp - Shared directory on a tx hash map ---------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// A session directory service: worker threads register, look up and expire
// sessions in a shared map. The same structural code runs under four
// synchronization policies (coarse lock, word STM, naive object STM,
// optimized object STM); the example prints the throughput of each, a
// small-scale preview of experiment E3.
//
//===----------------------------------------------------------------------===//

#include "containers/HashMap.h"
#include "stm/Stm.h"
#include "support/Random.h"
#include "support/ThreadBarrier.h"

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

using namespace otm;
using namespace otm::containers;

namespace {

constexpr int NumThreads = 4;
constexpr int OpsPerThread = 40000;
constexpr int KeySpace = 4096;

template <typename Policy> double runWorkload() {
  HashMap<Policy> Directory(1024);
  for (int64_t K = 0; K < KeySpace / 2; ++K)
    Directory.insert(K, K * 7);

  ThreadBarrier StartLine(NumThreads);
  auto Begin = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(31337 + T);
      StartLine.arriveAndWait();
      for (int I = 0; I < OpsPerThread; ++I) {
        int64_t Key = static_cast<int64_t>(Rng.nextBelow(KeySpace));
        uint64_t Dice = Rng.nextBelow(100);
        if (Dice < 80) {
          int64_t V;
          Directory.lookup(Key, V); // session lookup
        } else if (Dice < 90) {
          Directory.insert(Key, Key * 7); // register
        } else {
          Directory.erase(Key); // expire
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();
  auto End = std::chrono::steady_clock::now();
  double Seconds = std::chrono::duration<double>(End - Begin).count();
  return (static_cast<double>(NumThreads) * OpsPerThread) / Seconds / 1e6;
}

} // namespace

int main() {
  std::printf("session directory, %d threads x %d ops, 80/10/10 "
              "lookup/insert/erase:\n",
              NumThreads, OpsPerThread);
  std::printf("  %-14s %8.2f Mops/s\n", "coarse-lock",
              runWorkload<CoarseLockPolicy>());
  std::printf("  %-14s %8.2f Mops/s\n", "word-stm",
              runWorkload<WordStmPolicy>());
  std::printf("  %-14s %8.2f Mops/s\n", "obj-stm-naive",
              runWorkload<ObjStmNaivePolicy>());
  std::printf("  %-14s %8.2f Mops/s\n", "obj-stm-opt",
              runWorkload<ObjStmOptPolicy>());
  return 0;
}
