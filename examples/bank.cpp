//===- examples/bank.cpp - Concurrent bank with transactional audits ------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The motivating scenario for atomic blocks: money transfers between
// accounts plus a concurrent auditor that sums every balance. With plain
// locks the auditor needs a global locking protocol; with transactions it
// is just a read-only atomic block whose validated read set guarantees it
// only ever observes consistent totals.
//
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"
#include "support/Random.h"
#include "support/ThreadBarrier.h"

#include <cstdio>
#include <thread>
#include <vector>

using namespace otm;
using namespace otm::stm;

namespace {

struct Account : TxObject {
  Field<int64_t> Balance;
};

constexpr int NumAccounts = 64;
constexpr int64_t InitialBalance = 1000;
constexpr int NumTellers = 4;
constexpr int TransfersPerTeller = 25000;

} // namespace

int main() {
  std::vector<Account> Accounts(NumAccounts);
  for (Account &A : Accounts)
    A.Balance.store(InitialBalance);

  ThreadBarrier StartLine(NumTellers + 1);
  std::atomic<bool> Done{false};
  std::atomic<int64_t> AuditsRun{0};
  std::atomic<int64_t> AuditsBroken{0};

  // Tellers: transfer random amounts between random accounts.
  std::vector<std::thread> Tellers;
  for (int T = 0; T < NumTellers; ++T)
    Tellers.emplace_back([&, T] {
      Xoshiro256 Rng(2024 + T);
      StartLine.arriveAndWait();
      for (int I = 0; I < TransfersPerTeller; ++I) {
        std::size_t From = Rng.nextBelow(NumAccounts);
        std::size_t To = Rng.nextBelow(NumAccounts);
        int64_t Amount = static_cast<int64_t>(Rng.nextBelow(50));
        if (From == To)
          continue;
        Stm::atomic([&](TxManager &Tx) {
          int64_t F = Tx.read(&Accounts[From], &Account::Balance);
          int64_t G = Tx.read(&Accounts[To], &Account::Balance);
          Tx.write(&Accounts[From], &Account::Balance, F - Amount);
          Tx.write(&Accounts[To], &Account::Balance, G + Amount);
        });
      }
      TxManager::current().flushStats();
    });

  // Auditor: a long read-only transaction across all accounts.
  std::thread Auditor([&] {
    StartLine.arriveAndWait();
    while (!Done.load(std::memory_order_acquire)) {
      int64_t Total = 0;
      Stm::atomic([&](TxManager &Tx) {
        Total = 0;
        for (Account &A : Accounts)
          Total += Tx.read(&A, &Account::Balance);
      });
      ++AuditsRun;
      if (Total != NumAccounts * InitialBalance)
        ++AuditsBroken;
    }
    TxManager::current().flushStats();
  });

  for (std::thread &T : Tellers)
    T.join();
  Done.store(true, std::memory_order_release);
  Auditor.join();

  int64_t Total = 0;
  for (Account &A : Accounts)
    Total += A.Balance.load();

  TxStats S = Stm::globalStats();
  std::printf("bank: %d tellers x %d transfers, final total %lld "
              "(expected %lld)\n",
              NumTellers, TransfersPerTeller, static_cast<long long>(Total),
              static_cast<long long>(NumAccounts * InitialBalance));
  std::printf("audits: %lld runs, %lld inconsistent snapshots observed\n",
              static_cast<long long>(AuditsRun.load()),
              static_cast<long long>(AuditsBroken.load()));
  std::printf("stm: %llu commits, %llu aborts, abort rate %.2f%%\n",
              static_cast<unsigned long long>(S.Commits),
              static_cast<unsigned long long>(S.Aborts),
              S.Starts ? 100.0 * static_cast<double>(S.Aborts) /
                             static_cast<double>(S.Starts)
                       : 0.0);
  return (Total == NumAccounts * InitialBalance && AuditsBroken == 0) ? 0 : 1;
}
