//===- examples/quickstart.cpp - First steps with the otm STM -------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Quickstart: declare a transactional object, run atomic blocks against it
// from several threads, and inspect the runtime statistics. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"
#include "stm/TxGlobal.h"

#include <cstdio>
#include <thread>
#include <vector>

using namespace otm::stm;

namespace {

// A transactional object: inherit TxObject (one word of STM metadata) and
// declare fields as Field<T>.
struct Point : TxObject {
  Field<int64_t> X;
  Field<int64_t> Y;
};

// Globals get surrogate objects.
TxGlobal<int64_t> TotalMoves(0);

} // namespace

int main() {
  Point P;

  // The one-liner API: combined barriers, one open per access.
  Stm::atomic([&](TxManager &Tx) {
    Tx.write(&P, &Point::X, int64_t{3});
    Tx.write(&P, &Point::Y, int64_t{4});
  });

  // The decomposed API the compiler targets: open the object once, then
  // access fields directly — this is what the paper's optimizations
  // produce, and it is the fast path.
  Stm::atomic([&](TxManager &Tx) {
    Tx.openForUpdate(&P);
    Tx.logUndo(&P.X);
    P.X.store(P.X.load() + 10);
    Tx.logUndo(&P.Y);
    P.Y.store(P.Y.load() + 10);
    TotalMoves.set(Tx, TotalMoves.get(Tx) + 1);
  });

  // Transactions compose: a failure anywhere rolls everything back.
  std::printf("after two transactions: X=%lld Y=%lld moves=%lld\n",
              static_cast<long long>(P.X.load()),
              static_cast<long long>(P.Y.load()),
              static_cast<long long>(TotalMoves.unsafeGet()));

  // Concurrency: four threads, each moving the point 10000 times.
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < 10000; ++I)
        Stm::atomic([&](TxManager &Tx) {
          Tx.openForUpdate(&P);
          Tx.logUndo(&P.X);
          P.X.store(P.X.load() + 1);
          TotalMoves.set(Tx, TotalMoves.get(Tx) + 1);
        });
      TxManager::current().flushStats();
    });
  for (std::thread &T : Threads)
    T.join();

  TxStats S = Stm::globalStats();
  std::printf("after 4x10000 concurrent moves: X=%lld moves=%lld\n",
              static_cast<long long>(P.X.load()),
              static_cast<long long>(TotalMoves.unsafeGet()));
  std::printf("stats: %llu commits, %llu aborts (%llu conflict, %llu "
              "validation), %llu update-opens\n",
              static_cast<unsigned long long>(S.Commits),
              static_cast<unsigned long long>(S.Aborts),
              static_cast<unsigned long long>(S.AbortsOnConflict),
              static_cast<unsigned long long>(S.AbortsOnValidation),
              static_cast<unsigned long long>(S.OpensForUpdate));
  return 0;
}
